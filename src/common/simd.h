// Portable 4-lane double SIMD wrapper used by the batched recost kernels
// and the vectorized selectivity check.
//
// Three vector types, one interface:
//   Vec4dScalar  plain double[4] element loops — always defined, the
//                guaranteed-everywhere tier. Compilers auto-vectorize the
//                fixed-trip-count loops to SSE2/NEON where available, and
//                the four independent lanes software-pipeline on anything.
//   Vec4dNeon    two float64x2_t halves (aarch64, where NEON is baseline).
//   Vec4dAvx2    one __m256d — defined ONLY in translation units compiled
//                with -mavx2 -mfma (see src/optimizer/recost_bundle_avx2.cc
//                and its per-source COMPILE_OPTIONS). Default builds carry
//                no -march flags; the AVX2 kernel is selected at runtime
//                via __builtin_cpu_supports, never statically.
//
// Every helper is SCRPQO_VEC_INLINE (always_inline): the bodies must fold
// into their (possibly target-flagged) callers so no out-of-line COMDAT
// copy compiled with extended ISA can leak into generic code through the
// linker.
//
// The generic math entry points (VecMax/VecMin/VecSelectGt/VecLog2) also
// have double overloads with branch-identical scalar semantics, so the
// shared cost formulas (optimizer/cost_formulas_core.h) instantiate for
// either width from one source of truth.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <new>

#if defined(__AVX2__) && defined(__FMA__) && \
    (defined(__x86_64__) || defined(_M_X64))
#define SCRPQO_SIMD_AVX2_TU 1
#include <immintrin.h>
#else
#define SCRPQO_SIMD_AVX2_TU 0
#endif

#if SCRPQO_SIMD_AVX2_TU && defined(__AVX512F__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)
#define SCRPQO_SIMD_AVX512_TU 1
#else
#define SCRPQO_SIMD_AVX512_TU 0
#endif

#if defined(__aarch64__)
#define SCRPQO_SIMD_NEON 1
#include <arm_neon.h>
#else
#define SCRPQO_SIMD_NEON 0
#endif

#if defined(__GNUC__) || defined(__clang__)
#define SCRPQO_VEC_INLINE inline __attribute__((always_inline))
#else
#define SCRPQO_VEC_INLINE inline
#endif

namespace scrpqo {

/// Cache-line alignment used for the bundle's coefficient lanes (a 32-byte
/// vector load never splits a line, and adjacent lane rows never false-share).
inline constexpr std::size_t kSimdAlign = 64;

/// 64-byte-aligned heap allocation (paired with AlignedFree). Used for the
/// bundle coefficient rows; ordinary operator delete must NOT be called on
/// the result.
inline void* AlignedAlloc(std::size_t bytes) {
  if (bytes == 0) bytes = kSimdAlign;
  return ::operator new(bytes, std::align_val_t(kSimdAlign));
}

inline void AlignedFree(void* p) {
  if (p != nullptr) ::operator delete(p, std::align_val_t(kSimdAlign));
}

// ---------------------------------------------------------------------------
// Scalar (double) overloads of the generic vector math: exactly the branch
// semantics the original cost formulas used, so instantiating the shared
// templates at V = double is bit-identical to the historical scalar code.
// ---------------------------------------------------------------------------

SCRPQO_VEC_INLINE double VecMax(double a, double b) {
  return a > b ? a : b;
}
SCRPQO_VEC_INLINE double VecMin(double a, double b) {
  return a < b ? a : b;
}
/// Lanewise `x > t ? a : b`.
SCRPQO_VEC_INLINE double VecSelectGt(double x, double t, double a, double b) {
  return x > t ? a : b;
}
SCRPQO_VEC_INLINE double VecLog2(double x) { return std::log2(x); }

// ---------------------------------------------------------------------------
// Vec4dScalar: the everywhere tier.
// ---------------------------------------------------------------------------

struct Vec4dScalar {
  double v[4];

  Vec4dScalar() = default;
  SCRPQO_VEC_INLINE explicit Vec4dScalar(double x) : v{x, x, x, x} {}

  static SCRPQO_VEC_INLINE Vec4dScalar Load(const double* p) {
    Vec4dScalar r;
    r.v[0] = p[0];
    r.v[1] = p[1];
    r.v[2] = p[2];
    r.v[3] = p[3];
    return r;
  }
  SCRPQO_VEC_INLINE void Store(double* p) const {
    p[0] = v[0];
    p[1] = v[1];
    p[2] = v[2];
    p[3] = v[3];
  }
  /// r[l] = base[idx[l]]. Every index must be valid.
  static SCRPQO_VEC_INLINE Vec4dScalar Gather(const double* base,
                                              const int32_t* idx) {
    Vec4dScalar r;
    for (int i = 0; i < 4; ++i) r.v[i] = base[idx[i]];
    return r;
  }
  /// r[l] = idx[l] >= 0 ? base[idx[l]] : defs[l]. Negative indices are
  /// never dereferenced.
  static SCRPQO_VEC_INLINE Vec4dScalar GatherOrDefault(const double* base,
                                                       const int32_t* idx,
                                                       const double* defs) {
    Vec4dScalar r;
    for (int i = 0; i < 4; ++i) r.v[i] = idx[i] >= 0 ? base[idx[i]] : defs[i];
    return r;
  }
};

SCRPQO_VEC_INLINE Vec4dScalar operator+(Vec4dScalar a, Vec4dScalar b) {
  Vec4dScalar r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
SCRPQO_VEC_INLINE Vec4dScalar operator-(Vec4dScalar a, Vec4dScalar b) {
  Vec4dScalar r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] - b.v[i];
  return r;
}
SCRPQO_VEC_INLINE Vec4dScalar operator*(Vec4dScalar a, Vec4dScalar b) {
  Vec4dScalar r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}
SCRPQO_VEC_INLINE Vec4dScalar operator/(Vec4dScalar a, Vec4dScalar b) {
  Vec4dScalar r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] / b.v[i];
  return r;
}
SCRPQO_VEC_INLINE Vec4dScalar VecMax(Vec4dScalar a, Vec4dScalar b) {
  Vec4dScalar r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}
SCRPQO_VEC_INLINE Vec4dScalar VecMin(Vec4dScalar a, Vec4dScalar b) {
  Vec4dScalar r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return r;
}
SCRPQO_VEC_INLINE Vec4dScalar VecSelectGt(Vec4dScalar x, Vec4dScalar t,
                                          Vec4dScalar a, Vec4dScalar b) {
  Vec4dScalar r;
  for (int i = 0; i < 4; ++i) r.v[i] = x.v[i] > t.v[i] ? a.v[i] : b.v[i];
  return r;
}
SCRPQO_VEC_INLINE Vec4dScalar VecLog2(Vec4dScalar x) {
  Vec4dScalar r;
  for (int i = 0; i < 4; ++i) r.v[i] = std::log2(x.v[i]);
  return r;
}

// ---------------------------------------------------------------------------
// Vec4dNeon: aarch64 (NEON is baseline there, no extra compile flags).
// ---------------------------------------------------------------------------

#if SCRPQO_SIMD_NEON
struct Vec4dNeon {
  float64x2_t lo;
  float64x2_t hi;

  Vec4dNeon() = default;
  SCRPQO_VEC_INLINE explicit Vec4dNeon(double x)
      : lo(vdupq_n_f64(x)), hi(vdupq_n_f64(x)) {}
  SCRPQO_VEC_INLINE Vec4dNeon(float64x2_t l, float64x2_t h) : lo(l), hi(h) {}

  static SCRPQO_VEC_INLINE Vec4dNeon Load(const double* p) {
    return Vec4dNeon(vld1q_f64(p), vld1q_f64(p + 2));
  }
  SCRPQO_VEC_INLINE void Store(double* p) const {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }
  /// No hardware gather on NEON; lanewise loads (still skips the staging
  /// round-trip through memory the callers would otherwise do).
  static SCRPQO_VEC_INLINE Vec4dNeon Gather(const double* base,
                                            const int32_t* idx) {
    alignas(kSimdAlign) double buf[4];
    for (int i = 0; i < 4; ++i) buf[i] = base[idx[i]];
    return Load(buf);
  }
  static SCRPQO_VEC_INLINE Vec4dNeon GatherOrDefault(const double* base,
                                                     const int32_t* idx,
                                                     const double* defs) {
    alignas(kSimdAlign) double buf[4];
    for (int i = 0; i < 4; ++i) buf[i] = idx[i] >= 0 ? base[idx[i]] : defs[i];
    return Load(buf);
  }
};

SCRPQO_VEC_INLINE Vec4dNeon operator+(Vec4dNeon a, Vec4dNeon b) {
  return Vec4dNeon(vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi));
}
SCRPQO_VEC_INLINE Vec4dNeon operator-(Vec4dNeon a, Vec4dNeon b) {
  return Vec4dNeon(vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi));
}
SCRPQO_VEC_INLINE Vec4dNeon operator*(Vec4dNeon a, Vec4dNeon b) {
  return Vec4dNeon(vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi));
}
SCRPQO_VEC_INLINE Vec4dNeon operator/(Vec4dNeon a, Vec4dNeon b) {
  return Vec4dNeon(vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi));
}
SCRPQO_VEC_INLINE Vec4dNeon VecMax(Vec4dNeon a, Vec4dNeon b) {
  return Vec4dNeon(vmaxq_f64(a.lo, b.lo), vmaxq_f64(a.hi, b.hi));
}
SCRPQO_VEC_INLINE Vec4dNeon VecMin(Vec4dNeon a, Vec4dNeon b) {
  return Vec4dNeon(vminq_f64(a.lo, b.lo), vminq_f64(a.hi, b.hi));
}
SCRPQO_VEC_INLINE Vec4dNeon VecSelectGt(Vec4dNeon x, Vec4dNeon t,
                                        Vec4dNeon a, Vec4dNeon b) {
  uint64x2_t mlo = vcgtq_f64(x.lo, t.lo);
  uint64x2_t mhi = vcgtq_f64(x.hi, t.hi);
  return Vec4dNeon(vbslq_f64(mlo, a.lo, b.lo), vbslq_f64(mhi, a.hi, b.hi));
}
SCRPQO_VEC_INLINE Vec4dNeon VecLog2(Vec4dNeon x) {
  // No vector log2 on NEON; lanewise libm (Sort is the only user).
  alignas(kSimdAlign) double buf[4];
  x.Store(buf);
  for (double& d : buf) d = std::log2(d);
  return Vec4dNeon::Load(buf);
}
#endif  // SCRPQO_SIMD_NEON

// ---------------------------------------------------------------------------
// Vec4dAvx2: only in -mavx2 -mfma translation units.
// ---------------------------------------------------------------------------

#if SCRPQO_SIMD_AVX2_TU
struct Vec4dAvx2 {
  __m256d v;

  Vec4dAvx2() = default;
  SCRPQO_VEC_INLINE explicit Vec4dAvx2(double x) : v(_mm256_set1_pd(x)) {}
  SCRPQO_VEC_INLINE explicit Vec4dAvx2(__m256d x) : v(x) {}

  static SCRPQO_VEC_INLINE Vec4dAvx2 Load(const double* p) {
    return Vec4dAvx2(_mm256_loadu_pd(p));
  }
  SCRPQO_VEC_INLINE void Store(double* p) const { _mm256_storeu_pd(p, v); }
  /// Hardware gather: one vgatherdpd instead of four scalar loads staged
  /// through a stack buffer (whose 4x8B stores followed by a 32B vector
  /// load defeat store-to-load forwarding — a measurable stall per step).
  static SCRPQO_VEC_INLINE Vec4dAvx2 Gather(const double* base,
                                            const int32_t* idx) {
    const __m128i i32 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    // All-ones-mask form of _mm256_i32gather_pd: identical instruction,
    // but with a defined destination (the plain intrinsic's undefined dst
    // trips -Wmaybe-uninitialized through GCC's own header).
    const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    return Vec4dAvx2(
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, i32, ones, 8));
  }
  /// Masked gather: lanes with idx < 0 take defs[l]; their indices are
  /// never dereferenced (the mask suppresses the load and any fault).
  static SCRPQO_VEC_INLINE Vec4dAvx2 GatherOrDefault(const double* base,
                                                     const int32_t* idx,
                                                     const double* defs) {
    const __m128i i32 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    const __m256d mask = _mm256_castsi256_pd(_mm256_cmpgt_epi64(
        _mm256_cvtepi32_epi64(i32), _mm256_set1_epi64x(-1)));
    return Vec4dAvx2(
        _mm256_mask_i32gather_pd(_mm256_loadu_pd(defs), base, i32, mask, 8));
  }
};

SCRPQO_VEC_INLINE Vec4dAvx2 operator+(Vec4dAvx2 a, Vec4dAvx2 b) {
  return Vec4dAvx2(_mm256_add_pd(a.v, b.v));
}
SCRPQO_VEC_INLINE Vec4dAvx2 operator-(Vec4dAvx2 a, Vec4dAvx2 b) {
  return Vec4dAvx2(_mm256_sub_pd(a.v, b.v));
}
SCRPQO_VEC_INLINE Vec4dAvx2 operator*(Vec4dAvx2 a, Vec4dAvx2 b) {
  return Vec4dAvx2(_mm256_mul_pd(a.v, b.v));
}
SCRPQO_VEC_INLINE Vec4dAvx2 operator/(Vec4dAvx2 a, Vec4dAvx2 b) {
  return Vec4dAvx2(_mm256_div_pd(a.v, b.v));
}
SCRPQO_VEC_INLINE Vec4dAvx2 VecMax(Vec4dAvx2 a, Vec4dAvx2 b) {
  return Vec4dAvx2(_mm256_max_pd(a.v, b.v));
}
SCRPQO_VEC_INLINE Vec4dAvx2 VecMin(Vec4dAvx2 a, Vec4dAvx2 b) {
  return Vec4dAvx2(_mm256_min_pd(a.v, b.v));
}
SCRPQO_VEC_INLINE Vec4dAvx2 VecSelectGt(Vec4dAvx2 x, Vec4dAvx2 t,
                                        Vec4dAvx2 a, Vec4dAvx2 b) {
  __m256d m = _mm256_cmp_pd(x.v, t.v, _CMP_GT_OQ);
  return Vec4dAvx2(_mm256_blendv_pd(b.v, a.v, m));
}
SCRPQO_VEC_INLINE Vec4dAvx2 VecLog2(Vec4dAvx2 x) {
  alignas(kSimdAlign) double buf[4];
  x.Store(buf);
  for (double& d : buf) d = std::log2(d);
  return Vec4dAvx2::Load(buf);
}
#endif  // SCRPQO_SIMD_AVX2_TU

// ---------------------------------------------------------------------------
// Vec8dAvx512: only in -mavx512{f,dq,vl} translation units. Eight lanes =
// one __m512d = TWO adjacent 4-lane blocks of a bundle group, whose rows
// are contiguous by construction — the paired kernel halves the op count
// per step without touching the pack layout.
// ---------------------------------------------------------------------------

#if SCRPQO_SIMD_AVX512_TU
struct Vec8dAvx512 {
  __m512d v;

  Vec8dAvx512() = default;
  SCRPQO_VEC_INLINE explicit Vec8dAvx512(double x) : v(_mm512_set1_pd(x)) {}
  SCRPQO_VEC_INLINE explicit Vec8dAvx512(__m512d x) : v(x) {}

  static SCRPQO_VEC_INLINE Vec8dAvx512 Load(const double* p) {
    return Vec8dAvx512(_mm512_loadu_pd(p));
  }
  SCRPQO_VEC_INLINE void Store(double* p) const { _mm512_storeu_pd(p, v); }
  /// One scalar per 4-lane half: lanes 0-3 get `lo`, lanes 4-7 get `hi`.
  /// Used when a block pair's two uniform broadcast values differ (e.g.
  /// each block's shared selectivity product).
  static SCRPQO_VEC_INLINE Vec8dAvx512 BroadcastPair(double lo, double hi) {
    return Vec8dAvx512(_mm512_insertf64x4(
        _mm512_castpd256_pd512(_mm256_set1_pd(lo)), _mm256_set1_pd(hi), 1));
  }
  /// r[l] = base[idx[l]]. Every index must be valid.
  static SCRPQO_VEC_INLINE Vec8dAvx512 Gather(const double* base,
                                              const int32_t* idx) {
    const __m256i i32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return Vec8dAvx512(_mm512_i32gather_pd(i32, base, 8));
  }
  /// Masked gather: lanes with idx < 0 take defs[l]; their indices are
  /// never dereferenced (the mask suppresses the load and any fault).
  static SCRPQO_VEC_INLINE Vec8dAvx512 GatherOrDefault(const double* base,
                                                       const int32_t* idx,
                                                       const double* defs) {
    const __m256i i32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    const __mmask8 m = _mm256_cmpgt_epi32_mask(i32, _mm256_set1_epi32(-1));
    return Vec8dAvx512(
        _mm512_mask_i32gather_pd(_mm512_loadu_pd(defs), m, i32, base, 8));
  }
};

SCRPQO_VEC_INLINE Vec8dAvx512 operator+(Vec8dAvx512 a, Vec8dAvx512 b) {
  return Vec8dAvx512(_mm512_add_pd(a.v, b.v));
}
SCRPQO_VEC_INLINE Vec8dAvx512 operator-(Vec8dAvx512 a, Vec8dAvx512 b) {
  return Vec8dAvx512(_mm512_sub_pd(a.v, b.v));
}
SCRPQO_VEC_INLINE Vec8dAvx512 operator*(Vec8dAvx512 a, Vec8dAvx512 b) {
  return Vec8dAvx512(_mm512_mul_pd(a.v, b.v));
}
SCRPQO_VEC_INLINE Vec8dAvx512 operator/(Vec8dAvx512 a, Vec8dAvx512 b) {
  return Vec8dAvx512(_mm512_div_pd(a.v, b.v));
}
SCRPQO_VEC_INLINE Vec8dAvx512 VecMax(Vec8dAvx512 a, Vec8dAvx512 b) {
  return Vec8dAvx512(_mm512_max_pd(a.v, b.v));
}
SCRPQO_VEC_INLINE Vec8dAvx512 VecMin(Vec8dAvx512 a, Vec8dAvx512 b) {
  return Vec8dAvx512(_mm512_min_pd(a.v, b.v));
}
SCRPQO_VEC_INLINE Vec8dAvx512 VecSelectGt(Vec8dAvx512 x, Vec8dAvx512 t,
                                          Vec8dAvx512 a, Vec8dAvx512 b) {
  const __mmask8 m = _mm512_cmp_pd_mask(x.v, t.v, _CMP_GT_OQ);
  return Vec8dAvx512(_mm512_mask_blend_pd(m, b.v, a.v));
}
SCRPQO_VEC_INLINE Vec8dAvx512 VecLog2(Vec8dAvx512 x) {
  alignas(kSimdAlign) double buf[8];
  x.Store(buf);
  for (double& d : buf) d = std::log2(d);
  return Vec8dAvx512::Load(buf);
}
#endif  // SCRPQO_SIMD_AVX512_TU

// ---------------------------------------------------------------------------
// Runtime tier detection.
// ---------------------------------------------------------------------------

/// Kernel tiers for the batched recost engine. kScalar4 is always
/// available; at most one hardware tier joins it per architecture.
enum class SimdTier : int {
  kScalar4 = 0,  // Vec4dScalar (4-way software-pipelined / auto-vectorized)
  kNeon = 1,     // Vec4dNeon (aarch64)
  kAvx2 = 2,     // Vec4dAvx2 (x86-64, runtime-detected)
  kAvx512 = 3,   // Vec8dAvx512 block pairs (x86-64, runtime-detected)
};

inline const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar4:
      return "scalar4";
    case SimdTier::kNeon:
      return "neon";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

/// True when the running CPU can execute the AVX2+FMA kernel (the kernel
/// itself must additionally have been compiled in; see
/// bundle_kernel::HaveAvx2Kernel).
inline bool CpuSupportsAvx2Fma() {
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// True when the running CPU can execute the AVX-512 block-pair kernel
/// (foundation + DQ for f64x4 inserts + VL for the 256-bit mask compare).
/// The kernel itself must additionally have been compiled in; see
/// bundle_kernel::HaveAvx512Kernel.
inline bool CpuSupportsAvx512() {
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

}  // namespace scrpqo

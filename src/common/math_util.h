// Small numeric helpers shared across modules: percentiles, means, and the
// G/L selectivity-ratio factors at the heart of the SCR selectivity check.
#pragma once

#include <cstddef>
#include <vector>

#include "common/effects.h"
#include "common/simd.h"

namespace scrpqo {

/// Selectivities are clamped to this floor before ratio computation so
/// G/L stay finite (shared by ComputeGl / ComputeGlFast /
/// SelectivityRatios).
inline constexpr double kSelectivityFloor = 1e-9;

/// \brief Percentile of a sample using linear interpolation between order
/// statistics (the "R-7" definition used by numpy). `p` in [0, 100].
/// Returns 0 for an empty sample.
double Percentile(std::vector<double> values, double p);

/// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& values);

double Max(const std::vector<double>& values);

/// \brief Net cost increment factor G = prod over dimensions with
/// ratio > 1 of the ratio (paper Section 5.3). `ratios[i]` is
/// s_i(qc) / s_i(qe).
double ComputeG(const std::vector<double>& ratios);

/// \brief Net cost decrement factor L = prod over dimensions with
/// ratio < 1 of (1 / ratio) (paper Section 5.3).
double ComputeL(const std::vector<double>& ratios);

/// Component-wise ratios between two selectivity vectors; selectivities are
/// clamped to a small positive floor so ratios stay finite.
std::vector<double> SelectivityRatios(const std::vector<double>& from,
                                      const std::vector<double>& to);

struct GlFactors {
  double g = 1.0;
  double l = 1.0;
};

/// G and L of SelectivityRatios(from, to) computed in one pass without
/// materializing the ratio vector — the allocation-free form used by the
/// selectivity check's inner loop, which runs once per stored instance per
/// getPlan. Identical results to ComputeG/ComputeL over SelectivityRatios.
GlFactors ComputeGl(const std::vector<double>& from,
                    const std::vector<double>& to);

/// ComputeGl with the dimension loop unrolled over four independent
/// accumulator lanes (auto-vectorizable, and the lanes software-pipeline
/// regardless) plus a scalar tail. Same clamping and branch predicates as
/// ComputeGl; the horizontal product at the end reorders multiplications,
/// so results agree only to ~1 ulp — use ComputeGl where bit-exact
/// G/L identities are asserted, ComputeGlFast on the getPlan hot loop
/// (every consumer there compares against thresholds with slack).
SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_FP_DETERMINISTIC
SCRPQO_NOTHROW SCRPQO_LOCK_BOUNDED()
inline GlFactors ComputeGlFast(const std::vector<double>& from,
                               const std::vector<double>& to) noexcept {
  const size_t n = from.size();
  const double* f = from.data();
  const double* t = to.data();
  const Vec4dScalar one(1.0);
  const Vec4dScalar floor_v(kSelectivityFloor);
  Vec4dScalar g4(1.0);
  Vec4dScalar l4(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    Vec4dScalar fv = VecMax(Vec4dScalar::Load(f + i), floor_v);
    Vec4dScalar tv = VecMax(Vec4dScalar::Load(t + i), floor_v);
    Vec4dScalar r = tv / fv;
    // g *= (r > 1 ? r : 1);  l *= (r < 1 ? 1/r : 1)
    g4 = g4 * VecSelectGt(r, one, r, one);
    l4 = l4 * VecSelectGt(one, r, one / r, one);
  }
  GlFactors out;
  out.g = g4.v[0] * g4.v[1] * g4.v[2] * g4.v[3];
  out.l = l4.v[0] * l4.v[1] * l4.v[2] * l4.v[3];
  for (; i < n; ++i) {
    double fc = VecMax(f[i], kSelectivityFloor);
    double tc = VecMax(t[i], kSelectivityFloor);
    double r = tc / fc;
    if (r > 1.0) out.g *= r;
    if (r < 1.0) out.l /= r;
  }
  return out;
}

/// Euclidean distance between two selectivity vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace scrpqo

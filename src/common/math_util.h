// Small numeric helpers shared across modules: percentiles, means, and the
// G/L selectivity-ratio factors at the heart of the SCR selectivity check.
#pragma once

#include <cstddef>
#include <vector>

namespace scrpqo {

/// \brief Percentile of a sample using linear interpolation between order
/// statistics (the "R-7" definition used by numpy). `p` in [0, 100].
/// Returns 0 for an empty sample.
double Percentile(std::vector<double> values, double p);

/// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& values);

double Max(const std::vector<double>& values);

/// \brief Net cost increment factor G = prod over dimensions with
/// ratio > 1 of the ratio (paper Section 5.3). `ratios[i]` is
/// s_i(qc) / s_i(qe).
double ComputeG(const std::vector<double>& ratios);

/// \brief Net cost decrement factor L = prod over dimensions with
/// ratio < 1 of (1 / ratio) (paper Section 5.3).
double ComputeL(const std::vector<double>& ratios);

/// Component-wise ratios between two selectivity vectors; selectivities are
/// clamped to a small positive floor so ratios stay finite.
std::vector<double> SelectivityRatios(const std::vector<double>& from,
                                      const std::vector<double>& to);

struct GlFactors {
  double g = 1.0;
  double l = 1.0;
};

/// G and L of SelectivityRatios(from, to) computed in one pass without
/// materializing the ratio vector — the allocation-free form used by the
/// selectivity check's inner loop, which runs once per stored instance per
/// getPlan. Identical results to ComputeG/ComputeL over SelectivityRatios.
GlFactors ComputeGl(const std::vector<double>& from,
                    const std::vector<double>& to);

/// Euclidean distance between two selectivity vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace scrpqo

// SCR: the paper's technique (Selectivity check, Cost check, Redundancy
// check). getPlan implements Algorithm 1 with the GL-ordering heuristic for
// bounding Recost calls (Section 6.2); manageCache implements Algorithm 2
// including the lambda_r redundancy check and the LFU plan-budget eviction
// (Section 6.3.1). Optional extensions: dynamic per-cost lambda
// (Appendix D), BCG-violation detection (Appendix G) and the redundancy
// check for existing plans (Appendix F).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <vector>

#include "common/atomics.h"
#include "common/effects.h"
#include "pqo/instance_index.h"
#include "pqo/plan_store.h"
#include "pqo/technique.h"

namespace scrpqo {

/// How getPlan orders cost-check candidates (Section 6.2: "instances with
/// large values of GL are less likely to satisfy the cost check", plus the
/// alternative heuristics the paper lists for improving average overheads).
enum class CostCheckOrder {
  /// Increasing G*L — the paper's primary heuristic.
  kAscendingGl,
  /// Decreasing selectivity-region area (a function of V and lambda).
  kDescendingRegionArea,
  /// Decreasing usage count U (most-reused instances first).
  kDescendingUsage,
  /// Instance-list insertion order (no heuristic; ablation baseline).
  kInsertionOrder,
};

struct ScrOptions {
  /// Sub-optimality bound lambda (>= 1).
  double lambda = 2.0;
  /// Redundancy-check threshold lambda_r; < 0 selects the paper's default
  /// sqrt(lambda) (Appendix E). Use exactly 1.0 to disable plan rejection
  /// ("store every new plan").
  double lambda_r = -1.0;
  /// Plan-cache budget k (0 = unlimited). Section 6.3.1.
  int plan_budget = 0;
  /// Maximum cost-check candidates per getPlan, taken in `cost_check_order`
  /// order (Section 6.2 heuristic). <= 0 disables the cap.
  int max_cost_check_candidates = 8;
  CostCheckOrder cost_check_order = CostCheckOrder::kAscendingGl;
  /// Ablation switch: disable the Recost-based cost check entirely
  /// (selectivity check + redundancy check only).
  bool enable_cost_check = true;
  /// Answer the selectivity check and candidate selection through a k-d
  /// tree over log-selectivities instead of scanning the instance list
  /// (Section 6.2's spatial-index suggestion). Semantically identical for
  /// static lambda; requires cost_check_order == kAscendingGl.
  bool use_spatial_index = false;
  /// Appendix D: when true, the per-entry bound becomes
  /// lambda(C) = lambda_min + (lambda_max - lambda_min) * exp(-C / c_ref),
  /// giving cheap instances a looser bound. c_ref adapts to the running
  /// mean optimal cost.
  bool dynamic_lambda = false;
  double lambda_min = 1.1;
  double lambda_max = 10.0;
  /// Appendix G: detect PCM/BCG violations during cost checks and stop
  /// using offending instances for inference.
  bool detect_violations = true;
};

class Scr : public PqoTechnique {
 public:
  explicit Scr(ScrOptions options);

  std::string name() const override {
    std::ostringstream os;
    os << "SCR" << options_.lambda;
    if (options_.plan_budget > 0) os << "(k=" << options_.plan_budget << ")";
    if (options_.dynamic_lambda) os << "(dyn)";
    return os.str();
  }

  PlanChoice OnInstance(const WorkloadInstance& wi,
                        EngineContext* engine) override;

  /// Attaches the decision tracer / metrics registry. Every getPlan then
  /// emits one DecisionEvent (sel-check-hit, cost-check-hit, optimized or
  /// redundant-discard) plus one evicted event per budget eviction, and
  /// the decision counters/latency histograms are maintained.
  void SetObs(const ObsHooks& hooks) override;

  /// getPlan's cache-only half: runs the selectivity and cost checks and,
  /// on a hit, fills `choice` and returns true. No optimizer call is ever
  /// made. Exposed so AsyncScr can keep this on the critical path while
  /// deferring manageCache.
  ///
  /// Concurrency: safe to call from multiple threads simultaneously as
  /// long as no structural mutation (RegisterOptimization / OnInstance
  /// miss path / Restore) runs concurrently — AsyncScr enforces this with
  /// a shared/exclusive lock. Everything TryReuse writes (usage counters,
  /// violation flags, recost-call maxima) is a relaxed atomic. Scratch
  /// buffers come from the calling thread's ScratchArena, so once warmed
  /// the whole reuse attempt performs no heap allocation — the definition
  /// carries SCRPQO_HOT / SCRPQO_NOALLOC / SCRPQO_NONBLOCKING /
  /// SCRPQO_LOCK_BOUNDED() contracts proved by tools/analyze.
  [[nodiscard]] bool TryReuse(const WorkloadInstance& wi,
                              EngineContext* engine,
                PlanChoice* choice);

  /// manageCache's entry point for an externally-performed optimization
  /// (Algorithm 2). Thread-compatible: callers serialize access.
  /// `get_plan_recosts` / `get_plan_candidates` carry the caller's failed
  /// reuse-attempt stats into the traced decision event.
  void RegisterOptimization(const WorkloadInstance& wi,
                            std::shared_ptr<const OptimizationResult> result,
                            EngineContext* engine, int get_plan_recosts = 0,
                            int get_plan_candidates = 0);

  /// Failure path of getPlan: the optimizer returned null (failure or
  /// deadline overrun). Serves the cheapest cached plan by recost — chosen
  /// WITHOUT the lambda guarantee — or, on an empty cache, retries the
  /// optimizer with bounded backoff (and runs the normal manageCache when
  /// a retry succeeds). Emits one kDegraded decision on the fallback path;
  /// `choice->plan` stays null only when every retry failed on an empty
  /// cache. Thread-compatible: may mutate the cache structurally, so
  /// callers serialize it with other structural mutation (AsyncScr takes
  /// the exclusive lock).
  void ServeDegraded(const WorkloadInstance& wi, EngineContext* engine,
                     PlanChoice* choice,
                     std::chrono::steady_clock::time_point start);

  int64_t NumPlansCached() const override { return store_.NumLive(); }
  int64_t PeakPlansCached() const override { return store_.Peak(); }

  /// Instance-list size (bookkeeping-overhead metric, Section 6.1).
  int64_t NumInstancesStored() const;

  /// Maximum Recost calls any single getPlan invocation needed so far
  /// (Section 7.3's getPlan-overhead discussion).
  int max_recost_calls_per_get_plan() const {
    return max_recost_calls_per_get_plan_.value();
  }

  /// Violations detected via Appendix G.
  int64_t violations_detected() const {
    return violations_detected_.value();
  }

  /// Appendix F: drops plans that became redundant (every instance pointing
  /// at them is lambda-optimally served by another cached plan). Recost
  /// calls are charged to `engine`. Returns the number of plans dropped.
  int DropRedundantPlans(EngineContext* engine);

  // --- cross-template (global) budget support, used by PqoManager ---
  //
  // A fleet-level evictor compares LFU victims *across* caches, so these
  // expose the per-cache LFU frontier and a single-eviction entry point.
  // Pins travel as plan signatures because plan ids are store-local; a
  // pinned signature of 0 means "no pin".

  /// Aggregate usage count of this cache's LFU eviction victim, skipping a
  /// live plan with `pinned_signature`; -1 when nothing is evictable.
  int64_t MinLivePlanUsage(uint64_t pinned_signature = 0) const;

  /// Evicts the least-used live plan (never one matching `pinned_signature`)
  /// and drops its instance entries, emitting a kEvicted decision event
  /// charged to `instance_id`. Returns false when nothing was evictable.
  /// Thread-compatible: callers serialize with structural mutation.
  bool EvictLfuPlan(int instance_id, uint64_t pinned_signature = 0);

  /// Estimated heap bytes held by the cache: live plan trees + compiled
  /// recost programs + instance-list 5-tuples (plan_memory.h estimators).
  int64_t EstimatedMemoryBytes() const;

  /// Tags every emitted DecisionEvent with `label` (template key when this
  /// cache serves one template of a PqoManager). Set before traffic.
  void SetScopeLabel(std::string label) { scope_label_ = std::move(label); }

  // --- cache persistence (see pqo/cache_persistence.h) ---

  /// One instance-list 5-tuple in snapshot form; `plan_ordinal` indexes the
  /// vector returned by SnapshotPlans().
  struct SnapshotEntry {
    SVector v;
    int plan_ordinal = -1;
    double opt_cost = 0.0;
    double subopt = 1.0;
    int64_t usage = 0;
    bool cost_check_disabled = false;
  };

  /// Live cached plans, in a stable ordinal order.
  std::vector<PlanPtr> SnapshotPlans() const;
  /// Live instance entries referencing SnapshotPlans() ordinals.
  std::vector<SnapshotEntry> SnapshotInstances() const;
  /// Rebuilds the cache from a snapshot. The cache must be empty.
  Status Restore(const std::vector<PlanPtr>& plans,
                 const std::vector<SnapshotEntry>& entries);

 private:
  /// The paper's instance-list 5-tuple <V, PP, C, S, U> (Section 6.1).
  /// `usage` and `cost_check_disabled` are written from the concurrent
  /// getPlan read path, hence relaxed atomics; the remaining fields only
  /// change under the exclusive lock.
  struct InstanceEntry {
    SVector v;          // selectivity vector of the optimized instance
    int plan_id = -1;   // PP: pointer into the plan store
    double opt_cost = 0.0;  // C: optimal cost at this instance
    double subopt = 1.0;    // S: sub-optimality of plan at this instance
    RelaxedCounter<int64_t> usage = 0;  // U
    bool live = true;
    /// Appendix G: excluded from future cost-check inference.
    RelaxedCounter<bool> cost_check_disabled = false;
  };

  /// Effective lambda for an entry (Appendix D dynamic mode).
  double LambdaFor(const InstanceEntry& e) const;

  /// Relative area of the entry's selectivity-based inference region
  /// (Section 5.3), used by CostCheckOrder::kDescendingRegionArea.
  double RegionArea(const InstanceEntry& e) const;

  void ManageCache(const WorkloadInstance& wi,
                   std::shared_ptr<const OptimizationResult> result,
                   EngineContext* engine, PlanChoice* choice,
                   std::chrono::steady_clock::time_point start);


  /// Enforces the per-cache plan budget by LFU eviction. `pinned_plan_id`
  /// is the plan just stored/chosen for the in-flight instance: it must
  /// never be the victim (a fresh plan has usage 0 and would otherwise be
  /// evicted immediately, leaving the new instance entry dangling).
  void EvictForBudget(int instance_id, int pinned_plan_id);

  /// Drops one plan (emitting kEvicted) and the instance entries that point
  /// at it, which keeps the lambda guarantee intact (Section 6.3.1).
  void DropPlanAndEntries(int victim, int instance_id);

  /// Stamps technique/instance fields and hands the event to the tracer
  /// (no-op without one); bumps the matching decision counter.
  void EmitEvent(DecisionEvent event, int instance_id,
                 std::chrono::steady_clock::time_point start);

  ScrOptions options_;
  /// Stamped into DecisionEvent::template_key (empty = unscoped).
  std::string scope_label_;
  double lambda_r_effective_;
  PlanStore store_;
  std::vector<InstanceEntry> instances_;
  /// Lazily created on first insert when use_spatial_index is set.
  std::unique_ptr<InstanceKdTree> index_;
  RelaxedCounter<int> max_recost_calls_per_get_plan_ = 0;
  RelaxedCounter<int64_t> violations_detected_ = 0;
  // Running mean of optimal costs (reference scale for dynamic lambda).
  double cost_sum_ = 0.0;
  int64_t cost_count_ = 0;

  // --- observability (null = disabled) ---
  ObsHooks obs_;
  Counter* decision_counters_[9] = {};  // indexed by DecisionOutcome
  LogHistogram* get_plan_micros_ = nullptr;
  LogHistogram* manage_cache_micros_ = nullptr;
  LogHistogram* cost_check_candidates_ = nullptr;
  /// Per-stage latency histograms ("stage.<name>_micros"), resolved once
  /// at SetObs time (cached-sink-pointer pattern).
  StageHistograms stage_hists_;
};

}  // namespace scrpqo

#include "pqo/async_scr.h"

#include <chrono>

#include "common/fault_injection.h"

namespace scrpqo {

AsyncScr::AsyncScr(ScrOptions options) : inner_(options) {
  {
    // The object is not yet shared, but taking the lock keeps the
    // guarded inner_.name() read provable without an analysis escape.
    ReaderMutexLock cache_lock(cache_mu_);
    name_ = "Async" + inner_.name();
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

AsyncScr::~AsyncScr() {
  {
    MutexLock lock(queue_mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  space_available_.NotifyAll();
  worker_.join();
}

void AsyncScr::WorkerLoop() {
  // Hand-over-hand on the queue lock: held while popping bookkeeping,
  // dropped around the cache update so producers can keep enqueueing.
  queue_mu_.Lock();
  for (;;) {
    while (!shutting_down_ && queue_.empty()) {
      work_available_.Wait(queue_mu_);
    }
    if (queue_.empty()) {
      // shutting_down_ is set and all deferred work has been applied.
      queue_mu_.Unlock();
      return;
    }
    Task task = std::move(queue_.front());
    queue_.pop_front();
    worker_busy_ = true;
    space_available_.NotifyOne();
    queue_mu_.Unlock();
    {
      // manageCache mutates the cache structurally (instance-list growth,
      // plan-store inserts, evictions), so it takes the exclusive side;
      // concurrent getPlan readers drain first and new ones wait out the
      // update — exactly the background-thread model of the paper.
      WriterMutexLock cache_lock(cache_mu_);
      if (lock_exclusive_ != nullptr) lock_exclusive_->Increment();
      if (FaultShouldFire(faults::kAsyncTaskFail)) [[unlikely]] {
        // Deferred manageCache dropped (simulated task failure): the
        // fresh plan was already served on the critical path, so
        // correctness and the guarantee are intact — the cache just
        // doesn't learn from this instance and the next similar one
        // re-optimizes.
        if (tasks_dropped_ != nullptr) tasks_dropped_->Increment();
      } else {
        // The worker's own span, pre-seeded with the critical-path stages
        // captured at enqueue time, so the deferred decision event
        // carries the whole getPlan breakdown.
        GetPlanSpan span(span_enabled_.load(std::memory_order_relaxed));
        span.Seed(task.stages);
        inner_.RegisterOptimization(task.wi, std::move(task.result),
                                    engine_.load(std::memory_order_relaxed),
                                    task.get_plan_recosts,
                                    task.get_plan_candidates);
      }
    }
    queue_mu_.Lock();
    ++tasks_processed_;
    worker_busy_ = false;
    if (queue_.empty()) idle_.NotifyAll();
  }
}

void AsyncScr::SetObs(const ObsHooks& hooks) {
  WriterMutexLock cache_lock(cache_mu_);
  inner_.SetObs(hooks);
  if (hooks.metrics != nullptr) {
    lock_shared_ = hooks.metrics->counter("async_scr.lock_shared");
    lock_exclusive_ = hooks.metrics->counter("async_scr.lock_exclusive");
    tasks_dropped_ = hooks.metrics->counter("async_scr.tasks_dropped");
  } else {
    lock_shared_ = nullptr;
    lock_exclusive_ = nullptr;
    tasks_dropped_ = nullptr;
  }
  span_enabled_.store(hooks.tracer != nullptr, std::memory_order_relaxed);
}

SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_LOCK_BOUNDED(cache_mu_)
bool AsyncScr::TryReuseFast(const WorkloadInstance& wi,
                            EngineContext* engine, PlanChoice* probe) {
  // Shared side: reuse attempts from any number of request threads
  // proceed in parallel; they only wait when the worker is mid-update.
  ReaderMutexLock cache_lock(cache_mu_);
  if (lock_shared_ != nullptr) lock_shared_->Increment();
  return inner_.TryReuse(wi, engine, probe);
}

PlanChoice AsyncScr::OnInstance(const WorkloadInstance& wi,
                                EngineContext* engine) {
  // Span for the critical-path half (reuse attempt + optimize); a no-op
  // when a PqoManager already opened one for this call.
  GetPlanSpan span(span_enabled_.load(std::memory_order_relaxed));
  engine_.store(engine, std::memory_order_relaxed);
  PlanChoice probe;
  if (TryReuseFast(wi, engine, &probe)) return probe;

  // Cache miss: optimize on the critical path (the query must run), hand
  // the bookkeeping to the worker, and return the fresh optimal plan. The
  // optimizer call runs outside every lock.
  auto result = engine->Optimize(wi);
  if (result == nullptr) [[unlikely]] {
    // Optimizer unavailable: fall back to the wrapped cache's degraded
    // path. ServeDegraded may mutate the cache (retry success runs
    // manageCache inline), so it takes the exclusive side.
    PlanChoice degraded;
    degraded.recost_calls_in_get_plan = probe.recost_calls_in_get_plan;
    degraded.cost_check_candidates_in_get_plan =
        probe.cost_check_candidates_in_get_plan;
    WriterMutexLock cache_lock(cache_mu_);
    if (lock_exclusive_ != nullptr) lock_exclusive_->Increment();
    inner_.ServeDegraded(wi, engine, &degraded,
                         std::chrono::steady_clock::now());
    return degraded;
  }
  PlanChoice choice;
  choice.optimized = true;
  // Recost calls the failed reuse attempt made still belong to this
  // getPlan (max_recost_per_get_plan would otherwise under-report misses).
  choice.recost_calls_in_get_plan = probe.recost_calls_in_get_plan;
  choice.cost_check_candidates_in_get_plan =
      probe.cost_check_candidates_in_get_plan;
  choice.plan = std::make_shared<CachedPlan>(MakeCachedPlan(*result));
  {
    // Bounded hand-off: a miss may leave at most kMaxPendingTasks deferred
    // updates outstanding before it waits for the worker, so the cache
    // never lags the request stream by more than a couple of instances.
    MutexLock lock(queue_mu_);
    while (!shutting_down_ && queue_.size() >= kMaxPendingTasks) {
      space_available_.Wait(queue_mu_);
    }
    if (!shutting_down_) {
      // Capture the ambient breakdown (ours, or the manager's outer span)
      // rather than `span.breakdown()`: when nested, the outer span owns
      // the stages and ours is empty.
      StageBreakdown stages;
      if (const StageBreakdown* b = SpanContext::Current()) stages = *b;
      queue_.push_back(Task{wi, std::move(result),
                            probe.recost_calls_in_get_plan,
                            probe.cost_check_candidates_in_get_plan,
                            stages});
    }
  }
  work_available_.NotifyOne();
  return choice;
}

void AsyncScr::Flush() {
  MutexLock lock(queue_mu_);
  while (!queue_.empty() || worker_busy_) {
    idle_.Wait(queue_mu_);
  }
}

int64_t AsyncScr::NumPlansCached() const {
  ReaderMutexLock cache_lock(cache_mu_);
  return inner_.NumPlansCached();
}

int64_t AsyncScr::PeakPlansCached() const {
  ReaderMutexLock cache_lock(cache_mu_);
  return inner_.PeakPlansCached();
}

int64_t AsyncScr::tasks_processed() const {
  MutexLock lock(queue_mu_);
  return tasks_processed_;
}

int64_t AsyncScr::MinLivePlanUsage(uint64_t pinned_signature) const {
  ReaderMutexLock cache_lock(cache_mu_);
  return inner_.MinLivePlanUsage(pinned_signature);
}

bool AsyncScr::EvictLfuPlan(int instance_id, uint64_t pinned_signature) {
  WriterMutexLock cache_lock(cache_mu_);
  if (lock_exclusive_ != nullptr) lock_exclusive_->Increment();
  return inner_.EvictLfuPlan(instance_id, pinned_signature);
}

int64_t AsyncScr::EstimatedMemoryBytes() const {
  ReaderMutexLock cache_lock(cache_mu_);
  return inner_.EstimatedMemoryBytes();
}

void AsyncScr::SetScopeLabel(std::string label) {
  WriterMutexLock cache_lock(cache_mu_);
  inner_.SetScopeLabel(std::move(label));
}

}  // namespace scrpqo

#include "pqo/async_scr.h"

namespace scrpqo {

AsyncScr::AsyncScr(ScrOptions options) : inner_(options) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

AsyncScr::~AsyncScr() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  space_available_.notify_all();
  worker_.join();
}

void AsyncScr::WorkerLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    work_available_.wait(lock, [this] {
      return shutting_down_ || !queue_.empty();
    });
    if (queue_.empty()) {
      if (shutting_down_) return;
      continue;
    }
    Task task = std::move(queue_.front());
    queue_.pop_front();
    worker_busy_ = true;
    space_available_.notify_one();
    lock.unlock();
    {
      // manageCache mutates the cache structurally (instance-list growth,
      // plan-store inserts, evictions), so it takes the exclusive side;
      // concurrent getPlan readers drain first and new ones wait out the
      // update — exactly the background-thread model of the paper.
      std::unique_lock<std::shared_mutex> cache_lock(cache_mu_);
      if (lock_exclusive_ != nullptr) lock_exclusive_->Increment();
      // The worker's own span, pre-seeded with the critical-path stages
      // captured at enqueue time, so the deferred decision event carries
      // the whole getPlan breakdown.
      GetPlanSpan span(span_enabled_.load(std::memory_order_relaxed));
      span.Seed(task.stages);
      inner_.RegisterOptimization(task.wi, std::move(task.result),
                                  engine_.load(std::memory_order_relaxed),
                                  task.get_plan_recosts,
                                  task.get_plan_candidates);
    }
    lock.lock();
    ++tasks_processed_;
    worker_busy_ = false;
    if (queue_.empty()) idle_.notify_all();
  }
}

void AsyncScr::SetObs(const ObsHooks& hooks) {
  std::unique_lock<std::shared_mutex> cache_lock(cache_mu_);
  inner_.SetObs(hooks);
  if (hooks.metrics != nullptr) {
    lock_shared_ = hooks.metrics->counter("async_scr.lock_shared");
    lock_exclusive_ = hooks.metrics->counter("async_scr.lock_exclusive");
  } else {
    lock_shared_ = nullptr;
    lock_exclusive_ = nullptr;
  }
  span_enabled_.store(hooks.tracer != nullptr, std::memory_order_relaxed);
}

PlanChoice AsyncScr::OnInstance(const WorkloadInstance& wi,
                                EngineContext* engine) {
  // Span for the critical-path half (reuse attempt + optimize); a no-op
  // when a PqoManager already opened one for this call.
  GetPlanSpan span(span_enabled_.load(std::memory_order_relaxed));
  engine_.store(engine, std::memory_order_relaxed);
  PlanChoice probe;
  {
    // Shared side: reuse attempts from any number of request threads
    // proceed in parallel; they only wait when the worker is mid-update.
    std::shared_lock<std::shared_mutex> cache_lock(cache_mu_);
    if (lock_shared_ != nullptr) lock_shared_->Increment();
    if (inner_.TryReuse(wi, engine, &probe)) return probe;
  }

  // Cache miss: optimize on the critical path (the query must run), hand
  // the bookkeeping to the worker, and return the fresh optimal plan. The
  // optimizer call runs outside every lock.
  auto result = engine->Optimize(wi);
  PlanChoice choice;
  choice.optimized = true;
  // Recost calls the failed reuse attempt made still belong to this
  // getPlan (max_recost_per_get_plan would otherwise under-report misses).
  choice.recost_calls_in_get_plan = probe.recost_calls_in_get_plan;
  choice.cost_check_candidates_in_get_plan =
      probe.cost_check_candidates_in_get_plan;
  choice.plan = std::make_shared<CachedPlan>(MakeCachedPlan(*result));
  {
    // Bounded hand-off: a miss may leave at most kMaxPendingTasks deferred
    // updates outstanding before it waits for the worker, so the cache
    // never lags the request stream by more than a couple of instances.
    std::unique_lock<std::mutex> lock(queue_mu_);
    space_available_.wait(lock, [this] {
      return shutting_down_ || queue_.size() < kMaxPendingTasks;
    });
    if (!shutting_down_) {
      // Capture the ambient breakdown (ours, or the manager's outer span)
      // rather than `span.breakdown()`: when nested, the outer span owns
      // the stages and ours is empty.
      StageBreakdown stages;
      if (const StageBreakdown* b = SpanContext::Current()) stages = *b;
      queue_.push_back(Task{wi, std::move(result),
                            probe.recost_calls_in_get_plan,
                            probe.cost_check_candidates_in_get_plan,
                            stages});
    }
  }
  work_available_.notify_one();
  return choice;
}

void AsyncScr::Flush() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  idle_.wait(lock, [this] { return queue_.empty() && !worker_busy_; });
}

int64_t AsyncScr::NumPlansCached() const {
  std::shared_lock<std::shared_mutex> cache_lock(cache_mu_);
  return inner_.NumPlansCached();
}

int64_t AsyncScr::PeakPlansCached() const {
  std::shared_lock<std::shared_mutex> cache_lock(cache_mu_);
  return inner_.PeakPlansCached();
}

int64_t AsyncScr::tasks_processed() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return tasks_processed_;
}

int64_t AsyncScr::MinLivePlanUsage(uint64_t pinned_signature) const {
  std::shared_lock<std::shared_mutex> cache_lock(cache_mu_);
  return inner_.MinLivePlanUsage(pinned_signature);
}

bool AsyncScr::EvictLfuPlan(int instance_id, uint64_t pinned_signature) {
  std::unique_lock<std::shared_mutex> cache_lock(cache_mu_);
  if (lock_exclusive_ != nullptr) lock_exclusive_->Increment();
  return inner_.EvictLfuPlan(instance_id, pinned_signature);
}

int64_t AsyncScr::EstimatedMemoryBytes() const {
  std::shared_lock<std::shared_mutex> cache_lock(cache_mu_);
  return inner_.EstimatedMemoryBytes();
}

void AsyncScr::SetScopeLabel(std::string label) {
  std::unique_lock<std::shared_mutex> cache_lock(cache_mu_);
  inner_.SetScopeLabel(std::move(label));
}

}  // namespace scrpqo

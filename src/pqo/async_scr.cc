#include "pqo/async_scr.h"

namespace scrpqo {

AsyncScr::AsyncScr(ScrOptions options) : inner_(options) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

AsyncScr::~AsyncScr() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  worker_.join();
}

void AsyncScr::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock, [this] {
      return shutting_down_ || !queue_.empty();
    });
    if (queue_.empty()) {
      if (shutting_down_) return;
      continue;
    }
    Task task = std::move(queue_.front());
    queue_.pop_front();
    worker_busy_ = true;
    // manageCache mutates the cache (and issues Recost calls for the
    // redundancy check); it runs under the cache lock so getPlan observes a
    // consistent snapshot. The critical path only contends when it arrives
    // mid-update — exactly the background-thread model of the paper.
    inner_.RegisterOptimization(task.wi, std::move(task.result), engine_,
                                task.get_plan_recosts,
                                task.get_plan_candidates);
    ++tasks_processed_;
    worker_busy_ = false;
    if (queue_.empty()) idle_.notify_all();
  }
}

void AsyncScr::SetObs(const ObsHooks& hooks) {
  std::lock_guard<std::mutex> lock(mu_);
  inner_.SetObs(hooks);
}

PlanChoice AsyncScr::OnInstance(const WorkloadInstance& wi,
                                EngineContext* engine) {
  PlanChoice probe;
  {
    std::lock_guard<std::mutex> lock(mu_);
    engine_ = engine;
    if (inner_.TryReuse(wi, engine, &probe)) return probe;
  }

  // Cache miss: optimize on the critical path (the query must run), hand
  // the bookkeeping to the worker, and return the fresh optimal plan.
  auto result = engine->Optimize(wi);
  PlanChoice choice;
  choice.optimized = true;
  // Recost calls the failed reuse attempt made still belong to this
  // getPlan (max_recost_per_get_plan would otherwise under-report misses).
  choice.recost_calls_in_get_plan = probe.recost_calls_in_get_plan;
  choice.cost_check_candidates_in_get_plan =
      probe.cost_check_candidates_in_get_plan;
  choice.plan = std::make_shared<CachedPlan>(MakeCachedPlan(*result));
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{wi, std::move(result),
                          probe.recost_calls_in_get_plan,
                          probe.cost_check_candidates_in_get_plan});
  }
  work_available_.notify_one();
  return choice;
}

void AsyncScr::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && !worker_busy_; });
}

int64_t AsyncScr::NumPlansCached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.NumPlansCached();
}

int64_t AsyncScr::PeakPlansCached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner_.PeakPlansCached();
}

int64_t AsyncScr::tasks_processed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_processed_;
}

}  // namespace scrpqo

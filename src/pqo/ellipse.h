// Ellipse (heuristic PPQO variant, Bizarro et al.): reuse a plan when the
// new instance falls inside an ellipse whose foci are two previously
// optimized instances that share the same optimal plan (paper Table 1).
// No sub-optimality guarantee.
#pragma once

#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "pqo/plan_store.h"
#include "pqo/technique.h"

namespace scrpqo {

struct EllipseOptions {
  /// Eccentricity threshold: qc is inside the inference ellipse of foci
  /// (q1, q2) when dist(q1, q2) / (dist(qc, q1) + dist(qc, q2)) >= delta.
  double delta = 0.90;
  /// Appendix H.6 variant: Recost redundancy check on store when >= 1.
  double recost_redundancy_lambda_r = -1.0;
};

class Ellipse : public PqoTechnique {
 public:
  explicit Ellipse(EllipseOptions options) : options_(options) {}

  std::string name() const override {
    std::ostringstream os;
    os << "Ellipse(d=" << options_.delta << ")";
    if (options_.recost_redundancy_lambda_r >= 1.0) os << "+R";
    return os.str();
  }

  PlanChoice OnInstance(const WorkloadInstance& wi,
                        EngineContext* engine) override;

  int64_t NumPlansCached() const override { return store_.NumLive(); }
  int64_t PeakPlansCached() const override { return store_.Peak(); }

 private:
  EllipseOptions options_;
  PlanStore store_;
  /// Optimized points grouped by the plan they map to.
  std::map<int, std::vector<SVector>> points_by_plan_;
};

}  // namespace scrpqo

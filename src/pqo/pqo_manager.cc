#include "pqo/pqo_manager.h"

namespace scrpqo {

void PqoManager::FinishWarmup(TemplateCache* cache) {
  // Section 6.2's guidance: templates whose optimization overhead is
  // significant relative to execution get a tight bound (plan quality is
  // cheap to protect); templates where optimization dwarfs execution get
  // the loose bound (avoid optimizer calls at modest quality risk). We
  // proxy "execution cost" with the optimizer-estimated cost of the warmed
  // instances: cheap templates => optimization dominates => loose lambda.
  double avg_cost = cache->warmup_seen > 0
                        ? cache->warmup_cost_sum /
                              static_cast<double>(cache->warmup_seen)
                        : 0.0;
  // Threshold: one optimizer call is worth roughly a plan of cost ~100 in
  // our engine's units (see bench_table3's measured per-call time).
  constexpr double kOptimizerWorth = 100.0;
  cache->lambda = avg_cost >= kOptimizerWorth ? options_.lambda_tight
                                              : options_.lambda_loose;
  ScrOptions opts;
  opts.lambda = cache->lambda;
  opts.plan_budget = options_.plan_budget;
  opts.use_spatial_index = options_.use_spatial_index;
  cache->scr = std::make_unique<Scr>(opts);
}

PlanChoice PqoManager::OnInstance(const std::string& template_key,
                                  const WorkloadInstance& wi,
                                  EngineContext* engine) {
  TemplateCache& cache = caches_[template_key];
  if (cache.scr == nullptr && options_.warmup_instances <= 0) {
    cache.lambda = options_.default_lambda;
    ScrOptions opts;
    opts.lambda = cache.lambda;
    opts.plan_budget = options_.plan_budget;
    opts.use_spatial_index = options_.use_spatial_index;
    cache.scr = std::make_unique<Scr>(opts);
  }
  if (cache.scr == nullptr) {
    // Warm-up phase: Optimize-Always while measuring costs.
    auto result = engine->Optimize(wi);
    ++cache.warmup_seen;
    cache.warmup_cost_sum += result->cost;
    PlanChoice choice;
    choice.optimized = true;
    choice.plan = std::make_shared<CachedPlan>(MakeCachedPlan(*result));
    if (cache.warmup_seen >= options_.warmup_instances) {
      FinishWarmup(&cache);
    }
    return choice;
  }
  return cache.scr->OnInstance(wi, engine);
}

int64_t PqoManager::TotalPlansCached() const {
  int64_t total = 0;
  for (const auto& [key, cache] : caches_) {
    if (cache.scr != nullptr) total += cache.scr->NumPlansCached();
  }
  return total;
}

void PqoManager::InvalidateTemplate(const std::string& template_key) {
  caches_.erase(template_key);
}

double PqoManager::LambdaFor(const std::string& template_key) const {
  auto it = caches_.find(template_key);
  if (it == caches_.end()) return 0.0;
  return it->second.lambda;
}

}  // namespace scrpqo

#include "pqo/pqo_manager.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <thread>
#include <utility>

#include "obs/emit.h"
#include "obs/scoped_timer.h"

namespace scrpqo {

PqoManager::PqoManager(PqoManagerOptions options) : options_(options) {
  int n = options_.num_shards;
  if (n <= 0) {
    n = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

PqoManager::Shard& PqoManager::ShardFor(const std::string& key) const {
  size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

PqoManager::ShardLock::ShardLock(const PqoManager& mgr, const Shard& shard)
    : shard_(shard) {
  // StageTimer feeds both the wait histogram and the ambient getPlan span
  // (when OnInstance opened one); with neither attached it reads no clock.
  StageTimer wait(Stage::kShardWait,
                  mgr.shard_lock_wait_.load(std::memory_order_relaxed));
  shard.mu.Lock();
}

PqoManager::ShardLock::~ShardLock() { shard_.mu.Unlock(); }

void PqoManager::SetObs(const ObsHooks& hooks) {
  {
    MutexLock obs_lock(obs_mu_);
    obs_ = hooks;
    span_enabled_.store(hooks.tracer != nullptr, std::memory_order_relaxed);
    if (hooks.metrics != nullptr) {
      shard_lock_wait_.store(
          hooks.metrics->histogram("pqo_manager.shard_lock_wait"),
          std::memory_order_relaxed);
      templates_created_.store(
          hooks.metrics->counter("pqo_manager.templates"),
          std::memory_order_relaxed);
      invalidations_.store(
          hooks.metrics->counter("pqo_manager.invalidations"),
          std::memory_order_relaxed);
      global_evictions_counter_.store(
          hooks.metrics->counter("pqo_manager.global_evictions"),
          std::memory_order_relaxed);
      warmup_fallbacks_counter_.store(
          hooks.metrics->counter("pqo_manager.warmup_fallbacks"),
          std::memory_order_relaxed);
      degraded_counter_.store(
          hooks.metrics->counter("pqo.degraded_decisions"),
          std::memory_order_relaxed);
    } else {
      shard_lock_wait_.store(nullptr, std::memory_order_relaxed);
      templates_created_.store(nullptr, std::memory_order_relaxed);
      invalidations_.store(nullptr, std::memory_order_relaxed);
      global_evictions_counter_.store(nullptr, std::memory_order_relaxed);
      warmup_fallbacks_counter_.store(nullptr, std::memory_order_relaxed);
      degraded_counter_.store(nullptr, std::memory_order_relaxed);
    }
  }
  // Forward to existing caches. obs_mu_ is NOT held here: SetObs acquires
  // state mutexes, while FinishWarmupLocked acquires obs_mu_ under a state
  // mutex — holding both sides here would invert that order.
  for (const StatePtr& st : AllStates()) {
    TemplateState* state = st.get();
    MutexLock st_lock(state->mu);
    if (state->sync_scr != nullptr) state->sync_scr->SetObs(hooks);
    if (state->async_scr != nullptr) state->async_scr->SetObs(hooks);
  }
}

PqoManager::StatePtr PqoManager::GetOrCreate(const std::string& key) {
  Shard& shard = ShardFor(key);
  ShardLock lock(*this, shard);
  auto it = shard.templates.find(key);
  if (it != shard.templates.end()) return it->second;
  // The key is baked into the state before publication, so lock-free
  // readers (StatuszJson) never observe a half-written identity.
  auto st = std::make_shared<TemplateState>(key);
  shard.templates.emplace(key, st);
  if (Counter* c = templates_created_.load(std::memory_order_relaxed)) {
    c->Increment();
  }
  return st;
}

std::vector<PqoManager::StatePtr> PqoManager::AllStates() const {
  std::vector<StatePtr> out;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    ShardLock lock(*this, shard);
    for (const auto& [key, st] : shard.templates) out.push_back(st);
  }
  return out;
}

void PqoManager::FinishWarmupLocked(TemplateState* st) {
  // Section 6.2's guidance: templates whose optimization overhead is
  // significant relative to execution get a tight bound (plan quality is
  // cheap to protect); templates where optimization dwarfs execution get
  // the loose bound (avoid optimizer calls at modest quality risk). We
  // proxy "execution cost" with the optimizer-estimated cost of the warmed
  // instances: cheap templates => optimization dominates => loose lambda.
  //
  // Threshold: one optimizer call is worth roughly a plan of cost ~100 in
  // our engine's units (see bench_table3's measured per-call time).
  constexpr double kOptimizerWorth = 100.0;
  const bool warmed = options_.warmup_instances > 0;
  double lambda = options_.default_lambda;
  if (warmed) {
    if (st->warmup_seen <= 0 || !std::isfinite(st->warmup_cost_sum)) {
      // Zero observed instances (every optimize failed, or the template
      // was resurrected mid-warm-up): there is no average to read, so the
      // lambda decision falls back to default_lambda. Traced so operators
      // can see which templates never produced a cost sample.
      warmup_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      if (Counter* c =
              warmup_fallbacks_counter_.load(std::memory_order_relaxed)) {
        c->Increment();
      }
      Tracer* tracer = nullptr;
      {
        MutexLock obs_lock(obs_mu_);
        tracer = obs_.tracer;
      }
      DecisionEvent ev;
      ev.outcome = DecisionOutcome::kOptimized;
      ev.technique = "PqoManager(warmup-fallback:default_lambda)";
      ev.template_key = st->key;
      EmitDecisionEvent(tracer, std::move(ev));
    } else {
      double avg_cost =
          st->warmup_cost_sum / static_cast<double>(st->warmup_seen);
      lambda = avg_cost >= kOptimizerWorth ? options_.lambda_tight
                                           : options_.lambda_loose;
    }
  }
  st->lambda = std::max(1.0, lambda);

  ScrOptions opts;
  opts.lambda = st->lambda;
  opts.plan_budget = options_.plan_budget;
  opts.use_spatial_index = options_.use_spatial_index;
  ObsHooks hooks;
  {
    MutexLock obs_lock(obs_mu_);
    hooks = obs_;
  }
  if (options_.use_async) {
    st->async_scr = std::make_unique<AsyncScr>(opts);
    st->async_scr->SetScopeLabel(st->key);
    st->async_scr->SetObs(hooks);
  } else {
    st->sync_scr = std::make_unique<Scr>(opts);
    st->sync_scr->SetScopeLabel(st->key);
    st->sync_scr->SetObs(hooks);
  }
  st->ready = true;
}

PlanChoice PqoManager::OnInstance(const std::string& template_key,
                                  const WorkloadInstance& wi,
                                  EngineContext* engine) {
  // Outermost span for the routed decision: everything downstream
  // (shard-lock wait, the cache's checks, engine calls) accumulates into
  // one breakdown that the emitting technique copies onto its event.
  GetPlanSpan span(span_enabled_.load(std::memory_order_relaxed));
  StatePtr st = GetOrCreate(template_key);
  TemplateState* state = st.get();
  PlanChoice choice;
  AsyncScr* async = nullptr;
  bool warming = false;
  {
    MutexLock st_lock(state->mu);
    if (!state->ready && options_.warmup_instances <= 0) {
      FinishWarmupLocked(state);
    }
    if (!state->ready) {
      // Warm-up phase: Optimize-Always while measuring costs. Completion
      // counts attempts, not successes, so a template whose optimizer
      // calls fail still leaves warm-up (with the default-lambda
      // fallback) instead of being stuck here forever. The optimizer call
      // itself runs after the lock is dropped — holding a template mutex
      // across an engine call would serialize every concurrent warm-up
      // instance of the template behind one optimize (and is exactly what
      // the blocking-under-lock lint rule rejects).
      ++state->warmup_attempts;
      ++state->warmup_inflight;
      warming = true;
    } else if (state->async_scr != nullptr) {
      // AsyncScr handles its own locking; drop the template mutex so
      // concurrent readers of this template proceed in parallel.
      async = state->async_scr.get();
    } else {
      // Synchronous Scr is thread-compatible only: the template mutex
      // serializes every cache operation on it.
      choice = state->sync_scr->OnInstance(wi, engine);
    }
  }
  if (warming) {
    auto result = engine->Optimize(wi);
    // Warm-up is Optimize-Always with no cache to fall back on, so a
    // failed optimizer call (fault or deadline overrun) is retried with
    // bounded exponential backoff before the sample is given up. Runs
    // outside every lock, like the first attempt.
    for (int attempt = 0; result == nullptr && attempt < 3; ++attempt) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(int64_t{100} << attempt));
      result = engine->Optimize(wi);
    }
    choice.optimized = true;
    MutexLock st_lock(state->mu);
    --state->warmup_inflight;
    if (result != nullptr && std::isfinite(result->cost)) {
      ++state->warmup_seen;
      state->warmup_cost_sum += result->cost;
      choice.plan = std::make_shared<CachedPlan>(MakeCachedPlan(*result));
    } else {
      // Every retry failed: this instance cannot be served (plan stays
      // null) and the decision is explicitly degraded — traced so chaos
      // audits can separate it from guaranteed decisions.
      choice.degraded = true;
      choice.optimized = false;
      Tracer* tracer = nullptr;
      {
        MutexLock obs_lock(obs_mu_);
        tracer = obs_.tracer;
      }
      if (Counter* c = degraded_counter_.load(std::memory_order_relaxed)) {
        c->Increment();
      }
      if (tracer != nullptr) {
        DecisionEvent ev;
        ev.outcome = DecisionOutcome::kDegraded;
        ev.instance_id = wi.id;
        ev.technique = "PqoManager(warmup-optimize-failed)";
        ev.template_key = state->key;
        EmitDecisionEvent(tracer, std::move(ev));
      }
    }
    // Leave warm-up only once the attempt target is reached AND every
    // in-flight optimize has reported its cost sample back, so the lambda
    // decision sees the full warm-up window. A concurrent arrival in that
    // gap takes one extra Optimize-Always pass, which keeps the bound at
    // exactly 1 — never a stale cached plan.
    if (!state->ready &&
        state->warmup_attempts >= options_.warmup_instances &&
        state->warmup_inflight == 0) {
      FinishWarmupLocked(state);
    }
    // Warm-up plans are not cached, so the global budget is unaffected.
    return choice;
  }
  if (async != nullptr) choice = async->OnInstance(wi, engine);

  if (choice.optimized && (options_.global_plan_budget > 0 ||
                           options_.global_memory_bytes > 0)) {
    uint64_t pin = choice.plan != nullptr ? choice.plan->signature : 0;
    EnforceGlobalBudget(state, pin, wi.id);
  }
  return choice;
}

int64_t PqoManager::StatePlans(const TemplateState& st) const {
  MutexLock lock(st.mu);
  if (!st.ready) return 0;
  return st.async_scr != nullptr ? st.async_scr->NumPlansCached()
                                 : st.sync_scr->NumPlansCached();
}

int64_t PqoManager::StateMemoryBytes(const TemplateState& st) const {
  MutexLock lock(st.mu);
  if (!st.ready) return 0;
  return st.async_scr != nullptr ? st.async_scr->EstimatedMemoryBytes()
                                 : st.sync_scr->EstimatedMemoryBytes();
}

int64_t PqoManager::StateMinUsage(const TemplateState& st,
                                  uint64_t pinned_signature) const {
  MutexLock lock(st.mu);
  if (!st.ready) return -1;
  return st.async_scr != nullptr
             ? st.async_scr->MinLivePlanUsage(pinned_signature)
             : st.sync_scr->MinLivePlanUsage(pinned_signature);
}

bool PqoManager::StateEvictOne(TemplateState* st, int instance_id,
                               uint64_t pinned_signature) {
  MutexLock lock(st->mu);
  if (!st->ready) return false;
  return st->async_scr != nullptr
             ? st->async_scr->EvictLfuPlan(instance_id, pinned_signature)
             : st->sync_scr->EvictLfuPlan(instance_id, pinned_signature);
}

void PqoManager::EnforceGlobalBudget(TemplateState* current,
                                     uint64_t pinned_signature,
                                     int instance_id) {
  if (options_.global_plan_budget <= 0 && options_.global_memory_bytes <= 0) {
    return;
  }
  // One sweep at a time: concurrent optimizing threads would otherwise
  // race the same totals into over-eviction. Lock order: evict_mu_ first,
  // then shard locks / template mutexes inside the helpers — never the
  // reverse (see DESIGN.md "Capability map & lock order").
  MutexLock sweep(evict_mu_);
  for (;;) {
    std::vector<StatePtr> states = AllStates();
    int64_t total_plans = 0;
    int64_t total_bytes = 0;
    for (const StatePtr& st : states) {
      total_plans += StatePlans(*st);
      if (options_.global_memory_bytes > 0) {
        total_bytes += StateMemoryBytes(*st);
      }
    }
    bool over =
        (options_.global_plan_budget > 0 &&
         total_plans > options_.global_plan_budget) ||
        (options_.global_memory_bytes > 0 &&
         total_bytes > options_.global_memory_bytes);
    if (!over) return;

    // Globally least-used plan across every template, honoring the pin on
    // the in-flight instance's just-chosen plan.
    StatePtr victim;
    int64_t victim_usage = std::numeric_limits<int64_t>::max();
    for (const StatePtr& st : states) {
      uint64_t pin = st.get() == current ? pinned_signature : 0;
      int64_t usage = StateMinUsage(*st, pin);
      if (usage >= 0 && usage < victim_usage) {
        victim_usage = usage;
        victim = st;
      }
    }
    if (victim == nullptr) return;  // only the pinned plan is left
    uint64_t pin = victim.get() == current ? pinned_signature : 0;
    if (!StateEvictOne(victim.get(), instance_id, pin)) return;
    global_evictions_.fetch_add(1, std::memory_order_relaxed);
    if (Counter* c =
            global_evictions_counter_.load(std::memory_order_relaxed)) {
      c->Increment();
    }
  }
}

int64_t PqoManager::NumTemplates() const {
  int64_t total = 0;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    ShardLock lock(*this, shard);
    total += static_cast<int64_t>(shard.templates.size());
  }
  return total;
}

int64_t PqoManager::TotalPlansCached() const {
  int64_t total = 0;
  for (const StatePtr& st : AllStates()) total += StatePlans(*st);
  return total;
}

int64_t PqoManager::TotalMemoryBytes() const {
  int64_t total = 0;
  for (const StatePtr& st : AllStates()) total += StateMemoryBytes(*st);
  return total;
}

void PqoManager::InvalidateTemplate(const std::string& template_key) {
  StatePtr doomed;
  {
    Shard& shard = ShardFor(template_key);
    ShardLock lock(*this, shard);
    auto it = shard.templates.find(template_key);
    if (it == shard.templates.end()) return;
    doomed = std::move(it->second);
    shard.templates.erase(it);
  }
  if (Counter* c = invalidations_.load(std::memory_order_relaxed)) {
    c->Increment();
  }
  // `doomed` is destroyed here, outside the shard lock; in-flight
  // OnInstance calls holding their own reference finish on the detached
  // cache first (AsyncScr's destructor then joins its worker).
}

double PqoManager::LambdaFor(const std::string& template_key) const {
  StatePtr st;
  {
    Shard& shard = ShardFor(template_key);
    ShardLock lock(*this, shard);
    auto it = shard.templates.find(template_key);
    if (it == shard.templates.end()) return 0.0;
    st = it->second;
  }
  TemplateState* state = st.get();
  MutexLock st_lock(state->mu);
  // Warm-up serves every instance its freshly optimized plan, so the bound
  // in force is exactly 1 (Optimize-Always semantics) — never 0, which
  // downstream code could misread as a vacuously violated bound.
  return state->ready ? state->lambda : 1.0;
}

namespace {
void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}
}  // namespace

std::string PqoManager::StatuszJson() const {
  std::string out = "{\"templates\":[";
  int64_t total_plans = 0;
  int64_t total_bytes = 0;
  int64_t templates = 0;
  bool first = true;
  for (const StatePtr& st : AllStates()) {
    TemplateState* state = st.get();
    double lambda;
    bool warming;
    {
      MutexLock st_lock(state->mu);
      warming = !state->ready;
      lambda = state->ready ? state->lambda : 1.0;
    }
    int64_t plans = StatePlans(*st);
    int64_t bytes = StateMemoryBytes(*st);
    total_plans += plans;
    total_bytes += bytes;
    ++templates;
    if (!first) out += ",";
    first = false;
    out += "{\"key\":\"";
    // `key` is const and set before publication, so this read needs no
    // lock (see TemplateState::key).
    AppendJsonEscaped(state->key, &out);
    out += "\",\"lambda\":";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", lambda);
    out += buf;
    out += ",\"warming_up\":";
    out += warming ? "true" : "false";
    out += ",\"plans\":";
    out += std::to_string(plans);
    out += ",\"memory_bytes\":";
    out += std::to_string(bytes);
    out += "}";
  }
  int64_t ring_drops = 0;
  {
    MutexLock obs_lock(obs_mu_);
    if (obs_.tracer != nullptr) ring_drops = obs_.tracer->dropped();
  }
  out += "],\"totals\":{\"templates\":";
  out += std::to_string(templates);
  out += ",\"plans\":";
  out += std::to_string(total_plans);
  out += ",\"memory_bytes\":";
  out += std::to_string(total_bytes);
  out += ",\"global_plan_budget\":";
  out += std::to_string(options_.global_plan_budget);
  out += ",\"global_memory_bytes\":";
  out += std::to_string(options_.global_memory_bytes);
  out += ",\"global_evictions\":";
  out += std::to_string(global_evictions());
  out += ",\"warmup_fallbacks\":";
  out += std::to_string(warmup_fallbacks());
  out += ",\"trace_ring_drops\":";
  out += std::to_string(ring_drops);
  out += "}}\n";
  return out;
}

void PqoManager::FlushAll() {
  for (const StatePtr& st : AllStates()) {
    TemplateState* state = st.get();
    AsyncScr* async = nullptr;
    {
      MutexLock st_lock(state->mu);
      async = state->async_scr.get();
    }
    if (async != nullptr) async->Flush();
  }
  // Deferred manageCache work may have pushed past the budget; settle it.
  EnforceGlobalBudget(nullptr, 0, -1);
}

}  // namespace scrpqo

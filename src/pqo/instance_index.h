// Spatial index over stored instances (paper Section 6.2: "the overheads
// can also be improved by exploiting ... a spatial index that can provide
// such instances without scanning the entire list").
//
// The selectivity check asks: does any stored instance qe satisfy
// G(qe, qc) * L(qe, qc) <= bound? Working in log-selectivity space turns
// G*L into an L1 distance: log(G*L) = sum_i |log s_i(qc) - log s_i(qe)|.
// A k-d tree over log-selectivity points therefore answers the check as an
// L1 range query, and enumerates cost-check candidates in ascending-GL
// order as a nearest-neighbour sweep.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/atomics.h"
#include "query/query_instance.h"

namespace scrpqo {

class InstanceKdTree {
 public:
  /// `dimensions` is the template's d; points are inserted incrementally.
  explicit InstanceKdTree(int dimensions);

  /// Inserts a stored instance's selectivity vector under `id` (an opaque
  /// caller key, e.g. the instance-list position).
  void Insert(int64_t id, const SVector& sv);

  /// Marks an entry dead (lazily skipped by queries).
  void Remove(int64_t id);

  struct Match {
    int64_t id = -1;
    /// log(G * L) between the stored point and the query point.
    double log_gl = 0.0;
  };

  /// All live entries with G*L <= gl_bound for `sv`, unordered.
  std::vector<Match> RangeQuery(const SVector& sv, double gl_bound) const;

  /// The `k` live entries with smallest G*L for `sv`, ascending. This is
  /// the cost-check candidate stream.
  std::vector<Match> NearestByGl(const SVector& sv, int k) const;

  int64_t size() const { return live_count_; }

  /// Nodes visited by the last query (instrumentation for the pruning
  /// claim: visits << size once the tree is populated). Each query counts
  /// locally and publishes once, so concurrent readers see some recent
  /// query's count rather than a torn mix.
  int64_t last_query_nodes_visited() const { return nodes_visited_.value(); }

 private:
  struct Node {
    int64_t id;
    std::vector<double> point;  // log-selectivities
    int split_dim = 0;
    bool live = true;
    std::unique_ptr<Node> left, right;
  };

  std::vector<double> ToLogPoint(const SVector& sv) const;

  void RangeRec(const Node* node, const std::vector<double>& q,
                double bound, std::vector<Match>* out,
                int64_t* visited) const;

  /// Best-first k-NN under L1 distance.
  void NearestRec(const Node* node, const std::vector<double>& q, int k,
                  std::vector<Match>* heap, int64_t* visited) const;

  int dimensions_;
  std::unique_ptr<Node> root_;
  int64_t live_count_ = 0;
  mutable RelaxedCounter<int64_t> nodes_visited_ = 0;
};

}  // namespace scrpqo

// Spatial index over stored instances (paper Section 6.2: "the overheads
// can also be improved by exploiting ... a spatial index that can provide
// such instances without scanning the entire list").
//
// The selectivity check asks: does any stored instance qe satisfy
// G(qe, qc) * L(qe, qc) <= bound? Working in log-selectivity space turns
// G*L into an L1 distance: log(G*L) = sum_i |log s_i(qc) - log s_i(qe)|.
// A k-d tree over log-selectivity points therefore answers the check as an
// L1 range query, and enumerates cost-check candidates in ascending-GL
// order as a nearest-neighbour sweep.
//
// The query entry points come in two forms: the RangeQueryInto /
// NearestByGlInto templates append into any vector-like container —
// getPlan's hot path hands them an ArenaVec so a warmed query allocates
// nothing — and the std::vector-returning wrappers remain for tools and
// tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/atomics.h"
#include "common/effects.h"
#include "common/scratch_arena.h"
#include "query/query_instance.h"

namespace scrpqo {

class InstanceKdTree {
 public:
  /// `dimensions` is the template's d; points are inserted incrementally.
  explicit InstanceKdTree(int dimensions);

  /// Inserts a stored instance's selectivity vector under `id` (an opaque
  /// caller key, e.g. the instance-list position).
  void Insert(int64_t id, const SVector& sv);

  /// Marks an entry dead (lazily skipped by queries).
  void Remove(int64_t id);

  struct Match {
    int64_t id = -1;
    /// log(G * L) between the stored point and the query point.
    double log_gl = 0.0;
  };

  /// Appends all live entries with G*L <= gl_bound for `sv` to `out`,
  /// unordered. `OutVec` is any Match container with push_back (ArenaVec
  /// on the hot path). Query scratch comes from the calling thread's
  /// ScratchArena, so an enclosing Scope must be active when `out` is an
  /// ArenaVec (TryReuse's scope covers this); the std::vector wrapper
  /// below opens its own.
  template <typename OutVec>
  SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_LOCK_BOUNDED()
  void RangeQueryInto(const SVector& sv, double gl_bound, OutVec* out) const {
    int64_t visited = 0;
    if (gl_bound >= 1.0) {
      const double* q = ToLogPointArena(sv);
      RangeRec(root_.get(), q, std::log(gl_bound), out, &visited);
    }
    nodes_visited_.Store(visited);
  }

  /// Appends the `k` live entries with smallest G*L for `sv` to `out`,
  /// ascending. This is the cost-check candidate stream. Same scratch
  /// contract as RangeQueryInto; `out` must be empty on entry (it is used
  /// as the working heap).
  template <typename OutVec>
  SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_LOCK_BOUNDED()
  void NearestByGlInto(const SVector& sv, int k, OutVec* out) const {
    if (k <= 0) {
      nodes_visited_.Store(0);
      return;
    }
    int64_t visited = 0;
    const double* q = ToLogPointArena(sv);
    NearestRec(root_.get(), q, k, out, &visited);
    nodes_visited_.Store(visited);
    std::sort(out->begin(), out->end(),
              [](const Match& a, const Match& b) {
                return a.log_gl < b.log_gl;
              });
  }

  /// All live entries with G*L <= gl_bound for `sv`, unordered.
  std::vector<Match> RangeQuery(const SVector& sv, double gl_bound) const;

  /// The `k` live entries with smallest G*L for `sv`, ascending.
  std::vector<Match> NearestByGl(const SVector& sv, int k) const;

  int64_t size() const { return live_count_; }

  /// Nodes visited by the last query (instrumentation for the pruning
  /// claim: visits << size once the tree is populated). Each query counts
  /// locally and publishes once, so concurrent readers see some recent
  /// query's count rather than a torn mix.
  int64_t last_query_nodes_visited() const { return nodes_visited_.value(); }

 private:
  struct Node {
    int64_t id;
    std::vector<double> point;  // log-selectivities
    int split_dim = 0;
    bool live = true;
    std::unique_ptr<Node> left, right;
  };

  std::vector<double> ToLogPoint(const SVector& sv) const;

  /// `sv` as a log-point in the calling thread's arena (dies with the
  /// enclosing Scope).
  const double* ToLogPointArena(const SVector& sv) const;

  template <typename OutVec>
  void RangeRec(const Node* node, const double* q, double bound,
                OutVec* out, int64_t* visited) const {
    if (node == nullptr) return;
    ++*visited;
    double dist = 0.0;
    for (size_t i = 0; i < static_cast<size_t>(dimensions_); ++i) {
      dist += std::fabs(q[i] - node->point[i]);
      if (dist > bound) break;
    }
    if (node->live && dist <= bound) {
      out->push_back(Match{node->id, dist});
    }
    int dim = node->split_dim;
    double delta = q[static_cast<size_t>(dim)] -
                   node->point[static_cast<size_t>(dim)];
    // The near side always; the far side only if the splitting plane is
    // within `bound` (L1 balls project to intervals per axis).
    const Node* near = delta < 0 ? node->left.get() : node->right.get();
    const Node* far = delta < 0 ? node->right.get() : node->left.get();
    RangeRec(near, q, bound, out, visited);
    if (std::fabs(delta) <= bound) RangeRec(far, q, bound, out, visited);
  }

  /// Best-first k-NN under L1 distance; `heap` is a max-heap on distance.
  template <typename OutVec>
  void NearestRec(const Node* node, const double* q, int k, OutVec* heap,
                  int64_t* visited) const {
    if (node == nullptr) return;
    ++*visited;
    double dist = 0.0;
    for (size_t i = 0; i < static_cast<size_t>(dimensions_); ++i) {
      dist += std::fabs(q[i] - node->point[i]);
    }
    auto worst = [&heap]() {
      return heap->empty() ? std::numeric_limits<double>::infinity()
                           : heap->front().log_gl;
    };
    auto cmp = [](const Match& a, const Match& b) {
      return a.log_gl < b.log_gl;  // max-heap on distance
    };
    if (node->live &&
        (static_cast<int>(heap->size()) < k || dist < worst())) {
      heap->push_back(Match{node->id, dist});
      std::push_heap(heap->begin(), heap->end(), cmp);
      if (static_cast<int>(heap->size()) > k) {
        std::pop_heap(heap->begin(), heap->end(), cmp);
        heap->pop_back();
      }
    }
    int dim = node->split_dim;
    double delta = q[static_cast<size_t>(dim)] -
                   node->point[static_cast<size_t>(dim)];
    const Node* near = delta < 0 ? node->left.get() : node->right.get();
    const Node* far = delta < 0 ? node->right.get() : node->left.get();
    NearestRec(near, q, k, heap, visited);
    if (static_cast<int>(heap->size()) < k || std::fabs(delta) < worst()) {
      NearestRec(far, q, k, heap, visited);
    }
  }

  int dimensions_;
  std::unique_ptr<Node> root_;
  int64_t live_count_ = 0;
  mutable RelaxedCounter<int64_t> nodes_visited_ = 0;
};

}  // namespace scrpqo

// EngineContext: the database-engine surface visible to online PQO
// techniques — exactly the three calls the paper assumes (Section 4.2):
// sVector computation (done by the harness before dispatch), the
// traditional optimizer call, and the Recost API. The context meters both
// engine calls so optimization overheads can be reported per technique.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <thread>
#include <utility>

#include "common/effects.h"
#include "common/fault_injection.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "optimizer/optimizer.h"
#include "optimizer/recost.h"
#include "optimizer/recost_bundle.h"
#include "query/query_instance.h"

namespace scrpqo {

/// \brief A workload element: an instance with its id within the sequence's
/// underlying instance set and its precomputed sVector.
struct WorkloadInstance {
  int id = -1;
  QueryInstance instance;
  SVector svector;
};

/// \brief Oracle interface: lets the evaluation harness memoize optimizer
/// results across techniques and orderings (the result for a given instance
/// id is identical no matter who asks). Techniques are still charged the
/// optimizer call. Null entries are not allowed.
using OptimizeOracle =
    std::function<std::shared_ptr<const OptimizationResult>(
        const WorkloadInstance&)>;

class EngineContext {
 public:
  EngineContext(const Database* db, const Optimizer* optimizer)
      : db_(db),
        optimizer_(optimizer),
        recost_service_(&optimizer->cost_model()),
        // Kernel params and tier are invariant for the context's lifetime
        // (cost params live in the optimizer, tier in the CPU): prepared
        // once here, immutable afterwards, so concurrent RecostBundled
        // readers share it without synchronization.
        bundle_prepared_(
            RecostBundle::Prepare(optimizer->cost_model().params())) {}

  const Database& db() const { return *db_; }
  const Optimizer& optimizer() const { return *optimizer_; }

  /// Traditional optimizer call (charged to the calling technique).
  /// Thread-safe when the installed oracle (if any) is.
  ///
  /// Returns null when the optimizer is unavailable: a fault-injected
  /// failure (faults::kOptimizeFail) or a configured deadline overrun.
  /// Callers must degrade gracefully — Scr/AsyncScr fall back to the best
  /// cached plan traced as kDegraded; PqoManager retries with bounded
  /// backoff during warm-up.
  std::shared_ptr<const OptimizationResult> Optimize(
      const WorkloadInstance& wi) {
    // StageTimer instead of ScopedTimer: besides the histogram, engine
    // time lands in the ambient getPlan span (obs/span.h) so decision
    // events attribute it to the "optimize" stage.
    StageTimer timer(Stage::kOptimize, optimize_micros_);
    num_optimizer_calls_.fetch_add(1, std::memory_order_relaxed);
    if (optimize_calls_ != nullptr) optimize_calls_->Increment();
    const int64_t deadline_us = optimize_deadline_micros_;
    std::chrono::steady_clock::time_point started;
    if (deadline_us > 0) started = std::chrono::steady_clock::now();
    if (FaultRegistry::Global().enabled()) [[unlikely]] {
      double param = 0.0;
      if (FaultShouldFire(faults::kOptimizeLatency, &param)) {
        // Models a slow optimizer; with a deadline configured this
        // becomes a deadline overrun below. Default 10ms.
        int64_t sleep_us =
            param > 0.0 ? static_cast<int64_t>(param) : 10000;
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      }
      if (FaultShouldFire(faults::kOptimizeFail)) return nullptr;
    }
    std::shared_ptr<const OptimizationResult> result;
    if (oracle_) {
      result = oracle_(wi);
    } else {
      result = std::make_shared<OptimizationResult>(
          optimizer_->OptimizeWithSVector(wi.instance, wi.svector));
    }
    if (deadline_us > 0) {
      int64_t elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - started)
                            .count();
      if (elapsed > deadline_us) {
        deadline_overruns_.fetch_add(1, std::memory_order_relaxed);
        if (deadline_overrun_counter_ != nullptr) {
          deadline_overrun_counter_->Increment();
        }
        return nullptr;
      }
    }
    return result;
  }

  /// Recost API call (charged).
  [[nodiscard]] SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING
  SCRPQO_FP_DETERMINISTIC SCRPQO_LOCK_BOUNDED()
  double Recost(const CachedPlan& plan, const SVector& sv) {
    StageTimer timer(Stage::kRecost, recost_micros_);
    if (recost_calls_ != nullptr) recost_calls_->Increment();
    double cost = recost_service_.Recost(plan, sv);
    if (FaultRegistry::Global().enabled()) [[unlikely]] {
      cost = ApplyRecostFaults(cost);
    }
    return cost;
  }

  /// Batched Recost (see RecostService::RecostMany): one call, N program
  /// scans in 4-way pipelined blocks, visitor-controlled early exit. Each
  /// visited plan is charged as one Recost call; the whole batch records
  /// one latency sample ("engine.recost_batch_micros") and lands in the
  /// span's batch_recost stage.
  template <typename Visitor>
  SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_FP_DETERMINISTIC
  SCRPQO_LOCK_BOUNDED()
  size_t RecostMany(std::span<const CachedPlan* const> plans,
                    const SVector& sv, std::span<double> out_costs,
                    Visitor&& visit) {
    StageTimer timer(Stage::kBatchRecost, recost_batch_micros_);
    size_t scanned;
    if (FaultRegistry::Global().enabled()) [[unlikely]] {
      scanned = recost_service_.RecostMany(
          plans, sv, out_costs, [&](size_t i, double c) {
            return visit(i, ApplyRecostFaults(c));
          });
    } else {
      scanned = recost_service_.RecostMany(plans, sv, out_costs,
                                           std::forward<Visitor>(visit));
    }
    if (recost_calls_ != nullptr) {
      recost_calls_->Increment(static_cast<int64_t>(scanned));
    }
    return scanned;
  }

  /// SIMD-bundled Recost: evaluates `plan_ids` (all packed in `bundle`)
  /// through grouped 4-lane passes, same visitor contract and billing as
  /// RecostMany. The caller owns the bundle (PlanStore) and must hold its
  /// shared lock across the call.
  template <typename Visitor>
  SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_FP_DETERMINISTIC
  SCRPQO_LOCK_BOUNDED()
  size_t RecostBundled(const RecostBundle& bundle,
                       std::span<const int> plan_ids, const SVector& sv,
                       std::span<double> out_costs, Visitor&& visit) {
    StageTimer timer(Stage::kBatchRecost, recost_batch_micros_);
    size_t visited;
    if (FaultRegistry::Global().enabled()) [[unlikely]] {
      visited = bundle.EvalMany(plan_ids, sv, bundle_prepared_, out_costs,
                                [&](size_t i, double c) {
                                  return visit(i, ApplyRecostFaults(c));
                                });
    } else {
      visited = bundle.EvalMany(plan_ids, sv, bundle_prepared_, out_costs,
                                std::forward<Visitor>(visit));
    }
    recost_service_.ChargeCalls(static_cast<int64_t>(visited));
    if (recost_calls_ != nullptr) {
      recost_calls_->Increment(static_cast<int64_t>(visited));
    }
    return visited;
  }

  size_t RecostMany(std::span<const CachedPlan* const> plans,
                    const SVector& sv, std::span<double> out_costs) {
    return RecostMany(plans, sv, out_costs,
                      [](size_t, double) { return true; });
  }

  /// Uncharged recost used by evaluation machinery (computing SO of the
  /// chosen plan) — not part of any technique's overhead.
  [[nodiscard]] double RecostUncharged(const CachedPlan& plan,
                                       const SVector& sv) const {
    return optimizer_->cost_model().RecostTree(*plan.plan, sv);
  }

  void SetOracle(OptimizeOracle oracle) { oracle_ = std::move(oracle); }

  /// Arms a wall-clock budget for Optimize: calls that exceed it return
  /// null (counted in "engine.optimize_deadline_overruns") and the caller
  /// takes its degraded path. 0 (default) disables the check. Set before
  /// serving traffic; not synchronized with in-flight calls.
  void SetOptimizeDeadlineMicros(int64_t micros) {
    optimize_deadline_micros_ = micros > 0 ? micros : 0;
  }

  int64_t optimize_deadline_overruns() const {
    return deadline_overruns_.load(std::memory_order_relaxed);
  }

  /// Attaches a metrics registry: both engine calls are then counted
  /// ("engine.optimize_calls" / "engine.recost_calls") and timed
  /// ("engine.optimize_micros" / "engine.recost_micros"). Null detaches.
  void SetObs(MetricsRegistry* metrics) {
    if (metrics == nullptr) {
      optimize_calls_ = recost_calls_ = nullptr;
      optimize_micros_ = recost_micros_ = recost_batch_micros_ = nullptr;
      deadline_overrun_counter_ = nullptr;
      return;
    }
    optimize_calls_ = metrics->counter("engine.optimize_calls");
    recost_calls_ = metrics->counter("engine.recost_calls");
    optimize_micros_ = metrics->histogram("engine.optimize_micros");
    recost_micros_ = metrics->histogram("engine.recost_micros");
    recost_batch_micros_ = metrics->histogram("engine.recost_batch_micros");
    deadline_overrun_counter_ =
        metrics->counter("engine.optimize_deadline_overruns");
  }

  int64_t num_optimizer_calls() const {
    return num_optimizer_calls_.load(std::memory_order_relaxed);
  }
  int64_t num_recost_calls() const { return recost_service_.num_calls(); }

  void ResetCounters() {
    num_optimizer_calls_.store(0, std::memory_order_relaxed);
    recost_service_.ResetCounters();
  }

 private:
  /// Applies armed recost fault points to one produced cost. Only reached
  /// when some fault is armed (the callers gate on the registry's relaxed
  /// enabled() load), so the disabled-path cost stays one load per batch.
  static double ApplyRecostFaults(double cost) {
    if (FaultShouldFire(faults::kRecostNonFinite)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    double factor = 0.0;
    if (FaultShouldFire(faults::kRecostPerturb, &factor)) {
      return cost * (factor != 0.0 ? factor : 10.0);
    }
    return cost;
  }

  const Database* db_;
  const Optimizer* optimizer_;
  RecostService recost_service_;
  /// Set in the constructor, never mutated (see ctor comment).
  const RecostBundle::Prepared bundle_prepared_;
  OptimizeOracle oracle_;
  /// Relaxed atomic: Optimize runs un-serialized on the concurrent getPlan
  /// miss path, so several threads may bump this at once.
  std::atomic<int64_t> num_optimizer_calls_{0};
  /// Optimize wall-clock budget; 0 disables (see SetOptimizeDeadlineMicros).
  int64_t optimize_deadline_micros_ = 0;
  std::atomic<int64_t> deadline_overruns_{0};
  // Cached registry handles (null = metrics disabled).
  Counter* optimize_calls_ = nullptr;
  Counter* recost_calls_ = nullptr;
  Counter* deadline_overrun_counter_ = nullptr;
  LogHistogram* optimize_micros_ = nullptr;
  LogHistogram* recost_micros_ = nullptr;
  LogHistogram* recost_batch_micros_ = nullptr;
};

}  // namespace scrpqo

// Density (Aluc, DeHaan, Bowman, ICDE 2012 — "Parametric Plan Caching Using
// Density-Based Clustering"): reuse a plan when enough previously optimized
// instances in a circular selectivity neighborhood share the same optimal
// plan (paper Table 1). Parameters from the paper's evaluation: radius 0.1,
// confidence threshold 0.5.
#pragma once

#include <memory>
#include <sstream>
#include <vector>

#include "pqo/plan_store.h"
#include "pqo/technique.h"

namespace scrpqo {

struct DensityOptions {
  double radius = 0.1;
  double confidence = 0.5;
  /// Minimum neighbors required before inferring.
  int min_neighbors = 2;
  /// Appendix H.6 variant: Recost redundancy check on store when >= 1.
  double recost_redundancy_lambda_r = -1.0;
};

class Density : public PqoTechnique {
 public:
  explicit Density(DensityOptions options) : options_(options) {}

  std::string name() const override {
    std::ostringstream os;
    os << "Density(r=" << options_.radius << ",c=" << options_.confidence
       << ")";
    if (options_.recost_redundancy_lambda_r >= 1.0) os << "+R";
    return os.str();
  }

  PlanChoice OnInstance(const WorkloadInstance& wi,
                        EngineContext* engine) override;

  int64_t NumPlansCached() const override { return store_.NumLive(); }
  int64_t PeakPlansCached() const override { return store_.Peak(); }

 private:
  struct Point {
    SVector sv;
    int plan_id = -1;
  };

  DensityOptions options_;
  PlanStore store_;
  std::vector<Point> points_;
};

}  // namespace scrpqo

#include "pqo/plan_store.h"

#include <limits>
#include <span>

#include "common/scratch_arena.h"
#include "common/status.h"

namespace scrpqo {

PlanStore::StoreResult PlanStore::StoreOrReuse(const CachedPlan& plan,
                                               const SVector& sv,
                                               double opt_cost,
                                               double lambda_r,
                                               EngineContext* engine) {
  StoreResult result;
  auto it = by_signature_.find(plan.signature);
  if (it != by_signature_.end() &&
      entries_[static_cast<size_t>(it->second)].live) {
    result.plan_id = it->second;
    result.subopt = 1.0;
    result.already_present = true;
    return result;
  }

  if (lambda_r >= 1.0 && num_live_ > 0) {
    // Redundancy check: one batched Recost sweep over the live cached
    // plans (one sVector bind, N program scans — grouped 4-lane bundle
    // passes when every live plan is packed, pipelined blocks otherwise).
    // The sweep stops as soon as the running best is already within
    // lambda_r of optimal — the plan will be rejected either way, and the
    // entry records that plan's measured sub-optimality, so the lambda
    // guarantee is unaffected by not scanning the tail.
    ScratchArena& arena = ScratchArena::Tls();
    ScratchArena::Scope scope(arena);
    ArenaVec<const CachedPlan*> live_plans(
        arena, static_cast<size_t>(num_live_));
    ArenaVec<int> live_ids(arena, static_cast<size_t>(num_live_));
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].live) continue;
      live_plans.push_back(entries_[i].plan.get());
      live_ids.push_back(static_cast<int>(i));
    }
    ArenaVec<double> costs(arena, live_plans.size());
    costs.resize(live_plans.size());
    double min_cost = std::numeric_limits<double>::infinity();
    size_t min_pos = live_plans.size();
    double early_exit_below =
        opt_cost > 0.0 ? lambda_r * opt_cost
                       : -std::numeric_limits<double>::infinity();
    auto sweep_visitor = [&](size_t i, double c) {
      if (c < min_cost) {
        min_cost = c;
        min_pos = i;
      }
      return min_cost > early_exit_below;
    };
    std::span<double> cost_span(costs.data(), costs.size());
    if (BundleComplete()) {
      engine->RecostBundled(
          bundle_, std::span<const int>(live_ids.data(), live_ids.size()),
          sv, cost_span, sweep_visitor);
    } else {
      engine->RecostMany(
          std::span<const CachedPlan* const>(live_plans.data(),
                                             live_plans.size()),
          sv, cost_span, sweep_visitor);
    }
    if (min_pos < live_plans.size() && opt_cost > 0.0) {
      double s_min = min_cost / opt_cost;
      if (s_min <= lambda_r) {
        result.plan_id = live_ids[min_pos];
        result.subopt = s_min;
        result.reused_existing = true;
        return result;
      }
    }
  }

  // Store the new plan.
  Entry e;
  e.plan = std::make_shared<CachedPlan>(plan);
  e.total_usage = 0;
  e.live = true;
  entries_.push_back(std::move(e));
  int id = static_cast<int>(entries_.size()) - 1;
  by_signature_[plan.signature] = id;
  ++num_live_;
  peak_ = std::max(peak_, num_live_);
  // Pack the stored plan's program into the SIMD bundle. The program's
  // address is stable: entries are never erased (Drop only marks dead)
  // and the CachedPlan sits behind a shared_ptr.
  if (!bundle_.Add(id, &entries_[static_cast<size_t>(id)].plan->program)) {
    ++num_unbundled_;
  }
  result.plan_id = id;
  result.subopt = 1.0;
  return result;
}

std::vector<int> PlanStore::LivePlanIds() const {
  std::vector<int> ids;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].live) ids.push_back(static_cast<int>(i));
  }
  return ids;
}

void PlanStore::Drop(int plan_id) {
  Entry& e = entry(plan_id);
  SCRPQO_CHECK(e.live, "dropping a plan that is not live");
  e.live = false;
  --num_live_;
  by_signature_.erase(e.plan->signature);
  if (bundle_.Contains(plan_id)) {
    bundle_.Remove(plan_id);
  } else {
    --num_unbundled_;
  }
}

int PlanStore::MinUsagePlanId(int exclude_plan_id) const {
  int best = -1;
  int64_t best_usage = std::numeric_limits<int64_t>::max();
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].live) continue;
    if (static_cast<int>(i) == exclude_plan_id) continue;
    if (entries_[i].total_usage.value() < best_usage) {
      best_usage = entries_[i].total_usage.value();
      best = static_cast<int>(i);
    }
  }
  return best;
}

int PlanStore::FindLiveBySignature(uint64_t signature) const {
  auto it = by_signature_.find(signature);
  if (it == by_signature_.end()) return -1;
  return entries_[static_cast<size_t>(it->second)].live ? it->second : -1;
}

}  // namespace scrpqo

#include "pqo/scr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/math_util.h"
#include "common/scratch_arena.h"
#include "common/status.h"
#include "obs/emit.h"
#include "obs/scoped_timer.h"
#include "optimizer/plan_memory.h"

namespace scrpqo {

namespace {
/// Tolerance when classifying a cost-check observation as a BCG/PCM
/// violation (Appendix G); absorbs floating-point noise.
constexpr double kViolationSlack = 1.02;
}  // namespace

Scr::Scr(ScrOptions options) : options_(options) {
  SCRPQO_CHECK(options_.lambda >= 1.0, "lambda must be >= 1");
  lambda_r_effective_ = options_.lambda_r >= 1.0
                            ? options_.lambda_r
                            : std::sqrt(options_.lambda);
}

double Scr::RegionArea(const InstanceEntry& e) const {
  // Proportional to the paper's ((lambda-1)/lambda) * ln(lambda) * prod(s_i)
  // formula (Section 5.3); the lambda factor is shared across entries under
  // a static bound, so the selectivity product alone orders entries.
  double area = 1.0;
  for (double s : e.v) area *= s;
  return area;
}

double Scr::LambdaFor(const InstanceEntry& e) const {
  if (!options_.dynamic_lambda) return options_.lambda;
  double c_ref =
      cost_count_ > 0 ? cost_sum_ / static_cast<double>(cost_count_) : 1.0;
  c_ref = std::max(c_ref, 1e-12);
  return options_.lambda_min +
         (options_.lambda_max - options_.lambda_min) *
             std::exp(-e.opt_cost / c_ref);
}

void Scr::SetObs(const ObsHooks& hooks) {
  obs_ = hooks;
  if (obs_.metrics != nullptr) {
    decision_counters_[static_cast<int>(DecisionOutcome::kSelCheckHit)] =
        obs_.metrics->counter("decision.sel_check_hits");
    decision_counters_[static_cast<int>(DecisionOutcome::kCostCheckHit)] =
        obs_.metrics->counter("decision.cost_check_hits");
    decision_counters_[static_cast<int>(DecisionOutcome::kOptimized)] =
        obs_.metrics->counter("decision.optimized");
    decision_counters_[static_cast<int>(
        DecisionOutcome::kRedundantDiscard)] =
        obs_.metrics->counter("decision.redundant_discards");
    decision_counters_[static_cast<int>(DecisionOutcome::kEvicted)] =
        obs_.metrics->counter("cache.evictions");
    decision_counters_[static_cast<int>(DecisionOutcome::kDegraded)] =
        obs_.metrics->counter("pqo.degraded_decisions");
    get_plan_micros_ = obs_.metrics->histogram("scr.get_plan_micros");
    manage_cache_micros_ =
        obs_.metrics->histogram("scr.manage_cache_micros");
    cost_check_candidates_ =
        obs_.metrics->histogram("scr.cost_check_candidates");
    stage_hists_ = StageHistograms::FromRegistry(obs_.metrics);
    store_.SetObsCounters(obs_.metrics->counter("recost.lanes_active"),
                          obs_.metrics->counter("recost.bundle_rebuilds"));
  } else {
    for (Counter*& c : decision_counters_) c = nullptr;
    get_plan_micros_ = nullptr;
    manage_cache_micros_ = nullptr;
    cost_check_candidates_ = nullptr;
    stage_hists_.Reset();
    store_.SetObsCounters(nullptr, nullptr);
  }
}

void Scr::EmitEvent(DecisionEvent event, int instance_id,
                    std::chrono::steady_clock::time_point start)
    SCRPQO_EFFECT_ALLOW(alloc, "observability emission: only reachable with a tracer/metrics sink attached; the event's string stamps (technique/template key) are bounded and the untraced serving config — the one the arena-watermark test pins — never enters this function")
    SCRPQO_EFFECT_ALLOW(lock, "capture-side locks only: the production capture path is the wait-free SPSC ring (obs/ring_tracer.h); the mutexed Tracer behind the same funnel is the wire-format reference used by tests and the CLI")
    SCRPQO_EFFECT_ALLOW(block, "sink fan-out may flush to files in test/CLI configs; the serving config records into the SPSC ring and never blocks") {
  Counter* counter = decision_counters_[static_cast<int>(event.outcome)];
  if (counter != nullptr) counter->Increment();
  if (obs_.tracer == nullptr) return;
  event.instance_id = instance_id;
  event.technique = name();
  event.template_key = scope_label_;
  event.wall_micros = ScopedTimer::ElapsedMicros(start);
  // Per-instance decisions carry the ambient span's stage breakdown;
  // meta events (evictions) don't — their timing belongs to the decision
  // that triggered them. Open StageTimers must be stopped before emitting
  // or their stage is missing from the copy.
  if (IsDecisionOutcome(event.outcome)) {
    if (const StageBreakdown* b = SpanContext::Current()) {
      event.stages = *b;
    }
  }
  EmitDecisionEvent(obs_.tracer, std::move(event));
}

int64_t Scr::NumInstancesStored() const {
  int64_t n = 0;
  for (const auto& e : instances_) {
    if (e.live) ++n;
  }
  return n;
}

PlanChoice Scr::OnInstance(const WorkloadInstance& wi, EngineContext* engine) {
  // Outermost span for the whole decision (reuse attempt + optimize +
  // manageCache); a no-op when a PqoManager already opened one upstream.
  GetPlanSpan span(obs_.tracer != nullptr);
  auto start = std::chrono::steady_clock::now();
  PlanChoice choice;
  if (TryReuse(wi, engine, &choice)) return choice;

  // ---- Optimize + manageCache (Algorithm 2) ----
  auto result = engine->Optimize(wi);
  if (result == nullptr) [[unlikely]] {
    // Optimizer unavailable (fault or deadline overrun): serve whatever
    // the cache has, without the guarantee.
    ServeDegraded(wi, engine, &choice, start);
    return choice;
  }
  choice.optimized = true;
  ManageCache(wi, result, engine, &choice, start);
  return choice;
}

void Scr::ServeDegraded(const WorkloadInstance& wi, EngineContext* engine,
                        PlanChoice* choice,
                        std::chrono::steady_clock::time_point start) {
  choice->degraded = true;
  const SVector& sv = wi.svector;
  // Best cached plan by recost: the selectivity/cost checks already
  // rejected lambda-bounded reuse, so this is explicitly NOT
  // lambda-optimal — it is merely the least-bad plan available.
  int best_id = -1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int id : store_.LivePlanIds()) {
    double c = engine->Recost(*store_.entry(id).plan, sv);
    ++choice->recost_calls_in_get_plan;
    if (std::isfinite(c) && c < best_cost) {
      best_cost = c;
      best_id = id;
    }
  }
  if (best_id < 0) {
    // Empty (or all-non-finite) cache: nothing to fall back on. Retry the
    // optimizer a few times with short exponential backoff — during
    // warm-up this is the only way to make progress.
    for (int attempt = 0; attempt < 3 && best_id < 0; ++attempt) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(int64_t{100} << attempt));
      auto retry = engine->Optimize(wi);
      if (retry != nullptr) {
        // The optimizer recovered: this is a normal optimized decision
        // after all (guarantee intact), not a degraded one.
        choice->degraded = false;
        choice->optimized = true;
        ManageCache(wi, retry, engine, choice, start);
        return;
      }
    }
  } else {
    store_.AddUsage(best_id, 1);
    choice->plan = store_.entry(best_id).plan;
  }
  if (obs_.tracer != nullptr || obs_.metrics != nullptr) {
    DecisionEvent ev;
    ev.outcome = DecisionOutcome::kDegraded;
    ev.matched_entry = best_id;
    // No lambda claim: audits must not fold this decision into the
    // guaranteed set (lambda stays -1).
    ev.recost_calls = choice->recost_calls_in_get_plan;
    ev.candidates_scanned = choice->cost_check_candidates_in_get_plan;
    EmitEvent(std::move(ev), wi.id, start);
  }
}

void Scr::RegisterOptimization(
    const WorkloadInstance& wi,
    std::shared_ptr<const OptimizationResult> result, EngineContext* engine,
    int get_plan_recosts, int get_plan_candidates) {
  // The decision event's wall clock covers only the manageCache half here:
  // the optimizer ran on the caller's critical path (AsyncScr).
  PlanChoice ignored;
  ignored.recost_calls_in_get_plan = get_plan_recosts;
  ignored.cost_check_candidates_in_get_plan = get_plan_candidates;
  ManageCache(wi, std::move(result), engine, &ignored,
              std::chrono::steady_clock::now());
}

SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_LOCK_BOUNDED()
bool Scr::TryReuse(const WorkloadInstance& wi, EngineContext* engine,
                   PlanChoice* choice_out) {
  // Standalone reuse attempts (AsyncScr's critical path) get their own
  // span here; when Scr::OnInstance or a PqoManager opened one already
  // this is a no-op and stages accumulate into the outer breakdown.
  GetPlanSpan span(obs_.tracer != nullptr);
  std::chrono::steady_clock::time_point start{};
  if (obs_.tracer != nullptr) start = std::chrono::steady_clock::now();
  ScopedTimer get_plan_timer(get_plan_micros_);
  PlanChoice& choice = *choice_out;
  const SVector& sv = wi.svector;

  // scrpqo-lint: hot-path begin
  // Everything below runs once per query on the reuse path; after warm-up
  // it must not touch the heap (recost_bundle_test.cc asserts this with
  // the arena watermark). Scratch lives in the thread's arena and dies
  // when this scope unwinds.
  ScratchArena& arena = ScratchArena::Tls();
  ScratchArena::Scope arena_scope(arena);

  // ---- Selectivity check (Algorithm 1, first loop) ----
  // While scanning, collect cost-check candidates in increasing GL order
  // (Section 6.2 heuristic: small GL is most likely to pass).
  struct Candidate {
    double gl;
    size_t entry;
    double l;
  };
  ArenaVec<Candidate> candidates(arena);
  if (options_.use_spatial_index && index_ != nullptr) {
    // Spatial path (Section 6.2): log(G*L) is the L1 distance in
    // log-selectivity space, so the selectivity check is a range query with
    // the loosest possible per-entry bound (lambda; entry sub-optimality
    // only tightens it), verified per hit.
    double envelope =
        options_.dynamic_lambda ? options_.lambda_max : options_.lambda;
    StageTimer probe_timer(Stage::kIndexProbe,
                           stage_hists_[Stage::kIndexProbe]);
    ArenaVec<InstanceKdTree::Match> matches(arena);
    index_->RangeQueryInto(sv, envelope, &matches);
    probe_timer.Stop();
    StageTimer sel_timer(Stage::kSelCheck, stage_hists_[Stage::kSelCheck]);
    for (const auto& m : matches) {
      InstanceEntry& e = instances_[static_cast<size_t>(m.id)];
      if (!e.live) continue;
      if (std::exp(m.log_gl) <= LambdaFor(e) / e.subopt) {
        e.usage.Add(1);
        store_.AddUsage(e.plan_id, 1);
        choice.plan = store_.entry(e.plan_id).plan;
        sel_timer.Stop();
        if (obs_.tracer != nullptr || obs_.metrics != nullptr) {
          DecisionEvent ev;
          ev.outcome = DecisionOutcome::kSelCheckHit;
          ev.matched_entry = static_cast<int32_t>(m.id);
          ev.subopt = e.subopt;
          ev.lambda = LambdaFor(e);
          if (obs_.tracer != nullptr) {
            GlFactors gl = ComputeGlFast(e.v, sv);
            ev.g = gl.g;
            ev.l = gl.l;
          }
          EmitEvent(std::move(ev), wi.id, start);
        }
        return true;
      }
    }
    sel_timer.Stop();
    if (options_.enable_cost_check) {
      // Nearest-by-GL sweep; overfetch to survive the disabled-entry
      // filter.
      int want = options_.max_cost_check_candidates > 0
                     ? options_.max_cost_check_candidates
                     : static_cast<int>(instances_.size());
      StageTimer near_timer(Stage::kIndexProbe,
                            stage_hists_[Stage::kIndexProbe]);
      ArenaVec<InstanceKdTree::Match> nearest(arena);
      index_->NearestByGlInto(sv, 2 * want + 4, &nearest);
      near_timer.Stop();
      for (const auto& m : nearest) {
        InstanceEntry& e = instances_[static_cast<size_t>(m.id)];
        if (!e.live || e.cost_check_disabled.value()) continue;
        candidates.push_back(Candidate{std::exp(m.log_gl),
                                       static_cast<size_t>(m.id),
                                       ComputeGlFast(e.v, sv).l});
      }
    }
  } else {
    StageTimer sel_timer(Stage::kSelCheck, stage_hists_[Stage::kSelCheck]);
    for (size_t i = 0; i < instances_.size(); ++i) {
      InstanceEntry& e = instances_[i];
      if (!e.live) continue;
      GlFactors gl = ComputeGlFast(e.v, sv);
      double g = gl.g;
      double l = gl.l;
      double bound = LambdaFor(e) / e.subopt;
      if (g * l <= bound) {
        e.usage.Add(1);
        store_.AddUsage(e.plan_id, 1);
        choice.plan = store_.entry(e.plan_id).plan;
        sel_timer.Stop();
        if (obs_.tracer != nullptr || obs_.metrics != nullptr) {
          DecisionEvent ev;
          ev.outcome = DecisionOutcome::kSelCheckHit;
          ev.matched_entry = static_cast<int32_t>(i);
          ev.g = g;
          ev.l = l;
          ev.subopt = e.subopt;
          ev.lambda = LambdaFor(e);
          EmitEvent(std::move(ev), wi.id, start);
        }
        return true;
      }
      if (options_.enable_cost_check && !e.cost_check_disabled.value()) {
        candidates.push_back(Candidate{g * l, i, l});
      }
    }
  }

  // ---- Cost check (Algorithm 1, second loop) ----
  switch (options_.cost_check_order) {
    case CostCheckOrder::kAscendingGl:
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.gl < b.gl;
                });
      break;
    case CostCheckOrder::kDescendingRegionArea:
      // Area of the selectivity-based region grows with the product of the
      // entry's selectivities (Section 5.3); bigger regions are broader
      // matches, so try them first.
      std::sort(candidates.begin(), candidates.end(),
                [this](const Candidate& a, const Candidate& b) {
                  return RegionArea(instances_[a.entry]) >
                         RegionArea(instances_[b.entry]);
                });
      break;
    case CostCheckOrder::kDescendingUsage:
      std::sort(candidates.begin(), candidates.end(),
                [this](const Candidate& a, const Candidate& b) {
                  return instances_[a.entry].usage.value() >
                         instances_[b.entry].usage.value();
                });
      break;
    case CostCheckOrder::kInsertionOrder:
      break;  // already in insertion order
  }
  if (options_.max_cost_check_candidates > 0 &&
      static_cast<int>(candidates.size()) >
          options_.max_cost_check_candidates) {
    candidates.resize(
        static_cast<size_t>(options_.max_cost_check_candidates));
  }
  choice.cost_check_candidates_in_get_plan =
      static_cast<int>(candidates.size());
  if (cost_check_candidates_ != nullptr) {
    cost_check_candidates_->Record(static_cast<double>(candidates.size()));
  }
  // One batched Recost sweep: the sVector is bound once and each candidate
  // costs one flat program scan, in the heuristic order fixed above —
  // grouped 4-lane bundle passes when every cached plan is packed,
  // pipelined blocks otherwise. The visitor stops the sweep at the first
  // candidate that passes its bound, and both forms bill visited plans
  // only, so the Recost-call count is identical to the old
  // one-call-per-loop form (Section 7.3's overhead accounting depends on
  // this).
  int recosts = 0;
  int hit = -1;
  double hit_r = 0.0;
  if (!candidates.empty()) {
    ArenaVec<double> cand_costs(arena, candidates.size());
    cand_costs.resize(candidates.size());
    std::span<double> cost_span(cand_costs.data(), cand_costs.size());
    auto cost_visitor = [&](size_t idx, double new_cost) {
      const Candidate& c = candidates[idx];
      InstanceEntry& e = instances_[c.entry];
      ++recosts;
      double r = new_cost / std::max(e.opt_cost, 1e-30);

      // A non-finite or non-positive recost (engine mis-costing; also
      // reachable through the recost.nonfinite fault point) must never
      // enter the R*L <= lambda/S comparison: NaN compares false on
      // every branch and would silently corrupt stats downstream.
      // Quarantine the entry through the Appendix-G path — the sweep
      // continues, and with no passing candidate getPlan falls through
      // to a fresh optimization.
      if (!std::isfinite(new_cost) || new_cost <= 0.0 ||
          !std::isfinite(r)) {
        e.cost_check_disabled.Store(true);
        violations_detected_.Add(1);
        return true;
      }

      if (options_.detect_violations) {
        // Appendix G: the cached plan's cost at qe is S * C. BCG
        // implies cost(P, qc) <= G * cost(P, qe) and
        // >= cost(P, qe) / L; observing either bound broken means the
        // assumption failed for this entry.
        GlFactors gl = ComputeGlFast(e.v, sv);
        double plan_cost_at_e = e.subopt * e.opt_cost;
        if (new_cost > kViolationSlack * gl.g * plan_cost_at_e ||
            new_cost * kViolationSlack < plan_cost_at_e / c.l) {
          e.cost_check_disabled.Store(true);
          violations_detected_.Add(1);
          return true;  // keep scanning; this entry is now excluded
        }
      }

      if (r * c.l <= LambdaFor(e) / e.subopt) {
        hit = static_cast<int>(idx);
        hit_r = r;
        return false;  // cost check passed — stop the sweep
      }
      return true;
    };
    if (store_.BundleComplete()) {
      ArenaVec<int> cand_ids(arena, candidates.size());
      for (const Candidate& c : candidates) {
        cand_ids.push_back(instances_[c.entry].plan_id);
      }
      engine->RecostBundled(
          store_.bundle(),
          std::span<const int>(cand_ids.data(), cand_ids.size()), sv,
          cost_span, cost_visitor);
    } else {
      ArenaVec<const CachedPlan*> cand_plans(arena, candidates.size());
      for (const Candidate& c : candidates) {
        cand_plans.push_back(
            store_.entry(instances_[c.entry].plan_id).plan.get());
      }
      engine->RecostMany(
          std::span<const CachedPlan* const>(cand_plans.data(),
                                             cand_plans.size()),
          sv, cost_span, cost_visitor);
    }
  }
  if (hit >= 0) {
    const Candidate& c = candidates[static_cast<size_t>(hit)];
    InstanceEntry& e = instances_[c.entry];
    e.usage.Add(1);
    store_.AddUsage(e.plan_id, 1);
    choice.plan = store_.entry(e.plan_id).plan;
    choice.recost_calls_in_get_plan = recosts;
    max_recost_calls_per_get_plan_.UpdateMax(recosts);
    if (obs_.tracer != nullptr || obs_.metrics != nullptr) {
      DecisionEvent ev;
      ev.outcome = DecisionOutcome::kCostCheckHit;
      ev.matched_entry = static_cast<int32_t>(c.entry);
      ev.g = c.l > 0.0 ? c.gl / c.l : -1.0;
      ev.l = c.l;
      ev.r = hit_r;
      ev.subopt = e.subopt;
      ev.lambda = LambdaFor(e);
      ev.candidates_scanned = choice.cost_check_candidates_in_get_plan;
      ev.recost_calls = recosts;
      EmitEvent(std::move(ev), wi.id, start);
    }
    return true;
  }
  max_recost_calls_per_get_plan_.UpdateMax(recosts);
  choice.recost_calls_in_get_plan = recosts;
  return false;
  // scrpqo-lint: hot-path end
}

void Scr::ManageCache(const WorkloadInstance& wi,
                      std::shared_ptr<const OptimizationResult> result,
                      EngineContext* engine, PlanChoice* choice,
                      std::chrono::steady_clock::time_point start) {
  // Covers the store-or-reuse half (including the redundancy check's
  // recosts); stopped before the decision event is emitted so the
  // "manage_cache" stage appears in its breakdown. The bookkeeping tail
  // (budget eviction, instance-list push) stays unattributed.
  StageTimer manage_cache_timer(Stage::kManageCache, manage_cache_micros_);
  const SVector& sv = wi.svector;
  if (FaultShouldFire(faults::kColdAllocFail)) [[unlikely]] {
    // Simulated allocation failure on the cold path: serve the freshly
    // optimized plan but skip cache insertion. The served plan is the
    // optimal one, so the decision keeps the guarantee — only cache
    // growth is lost (the next similar instance re-optimizes).
    manage_cache_timer.Stop();
    choice->plan = std::make_shared<CachedPlan>(MakeCachedPlan(*result));
    if (obs_.tracer != nullptr || obs_.metrics != nullptr) {
      DecisionEvent ev;
      ev.outcome = DecisionOutcome::kOptimized;
      ev.matched_entry = -1;
      ev.candidates_scanned = choice->cost_check_candidates_in_get_plan;
      ev.recost_calls = choice->recost_calls_in_get_plan;
      EmitEvent(std::move(ev), wi.id, start);
    }
    return;
  }
  cost_sum_ += result->cost;
  ++cost_count_;

  CachedPlan cached = MakeCachedPlan(*result);
  PlanStore::StoreResult stored =
      store_.StoreOrReuse(cached, sv, result->cost, lambda_r_effective_,
                          engine);
  manage_cache_timer.Stop();

  if (obs_.tracer != nullptr || obs_.metrics != nullptr) {
    DecisionEvent ev;
    ev.outcome = stored.reused_existing
                     ? DecisionOutcome::kRedundantDiscard
                     : DecisionOutcome::kOptimized;
    ev.matched_entry = stored.plan_id;
    if (stored.reused_existing) {
      ev.r = stored.subopt;
      ev.subopt = stored.subopt;
      ev.lambda = lambda_r_effective_;
    }
    ev.candidates_scanned = choice->cost_check_candidates_in_get_plan;
    ev.recost_calls = choice->recost_calls_in_get_plan;
    EmitEvent(std::move(ev), wi.id, start);
  }

  if (!stored.already_present && !stored.reused_existing) {
    // A genuinely new plan entered the cache; enforce the budget. The plan
    // just stored is pinned: at this point it carries zero usage, so an
    // unpinned LFU sweep would evict it first and leave the instance entry
    // pushed below pointing at a dead plan.
    if (options_.plan_budget > 0 &&
        store_.NumLive() > options_.plan_budget) {
      EvictForBudget(wi.id, stored.plan_id);
    }
  }

  InstanceEntry entry;
  entry.v = sv;
  entry.plan_id = stored.plan_id;
  entry.opt_cost = result->cost;
  entry.subopt = stored.subopt;
  entry.usage = 1;
  instances_.push_back(std::move(entry));
  if (options_.use_spatial_index) {
    if (index_ == nullptr) {
      index_ = std::make_unique<InstanceKdTree>(
          static_cast<int>(sv.size()));
    }
    index_->Insert(static_cast<int64_t>(instances_.size()) - 1, sv);
  }
  store_.AddUsage(stored.plan_id, 1);
  choice->plan = store_.entry(stored.plan_id).plan;
}

void Scr::EvictForBudget(int instance_id, int pinned_plan_id) {
  while (store_.NumLive() > options_.plan_budget) {
    int victim = store_.MinUsagePlanId(pinned_plan_id);
    // Nothing evictable besides the pinned in-flight plan.
    if (victim < 0) break;
    DropPlanAndEntries(victim, instance_id);
  }
}

void Scr::DropPlanAndEntries(int victim, int instance_id) {
  store_.Drop(victim);
  if (obs_.tracer != nullptr || obs_.metrics != nullptr) {
    DecisionEvent ev;
    ev.outcome = DecisionOutcome::kEvicted;
    ev.matched_entry = victim;
    EmitEvent(std::move(ev), instance_id, std::chrono::steady_clock::now());
  }
  // Dropping the instance entries keeps the lambda-optimality guarantee
  // intact (Section 6.3.1): no future inference can use the gone plan.
  for (size_t i = 0; i < instances_.size(); ++i) {
    InstanceEntry& e = instances_[i];
    if (e.live && e.plan_id == victim) {
      e.live = false;
      if (index_ != nullptr) index_->Remove(static_cast<int64_t>(i));
    }
  }
}

int64_t Scr::MinLivePlanUsage(uint64_t pinned_signature) const {
  int exclude = pinned_signature != 0
                    ? store_.FindLiveBySignature(pinned_signature)
                    : -1;
  int id = store_.MinUsagePlanId(exclude);
  if (id < 0) return -1;
  return store_.entry(id).total_usage.value();
}

bool Scr::EvictLfuPlan(int instance_id, uint64_t pinned_signature) {
  int exclude = pinned_signature != 0
                    ? store_.FindLiveBySignature(pinned_signature)
                    : -1;
  int victim = store_.MinUsagePlanId(exclude);
  if (victim < 0) return false;
  DropPlanAndEntries(victim, instance_id);
  return true;
}

int64_t Scr::EstimatedMemoryBytes() const {
  int64_t total = 0;
  for (int id : store_.LivePlanIds()) {
    const std::shared_ptr<const CachedPlan>& p = store_.entry(id).plan;
    total += static_cast<int64_t>(sizeof(CachedPlan));
    if (p->plan != nullptr) total += PlanMemoryBytes(*p->plan);
    total += p->program.memory_bytes();
  }
  int dims = instances_.empty()
                 ? 0
                 : static_cast<int>(instances_.front().v.size());
  total += NumInstancesStored() * InstanceEntryBytes(dims);
  return total;
}

std::vector<PlanPtr> Scr::SnapshotPlans() const {
  std::vector<PlanPtr> out;
  for (int id : store_.LivePlanIds()) {
    out.push_back(store_.entry(id).plan->plan);
  }
  return out;
}

std::vector<Scr::SnapshotEntry> Scr::SnapshotInstances() const {
  // Map live plan ids to snapshot ordinals.
  std::map<int, int> ordinal_of;
  int ordinal = 0;
  for (int id : store_.LivePlanIds()) ordinal_of[id] = ordinal++;
  std::vector<SnapshotEntry> out;
  for (const auto& e : instances_) {
    if (!e.live) continue;
    auto it = ordinal_of.find(e.plan_id);
    if (it == ordinal_of.end()) continue;
    SnapshotEntry se;
    se.v = e.v;
    se.plan_ordinal = it->second;
    se.opt_cost = e.opt_cost;
    se.subopt = e.subopt;
    se.usage = e.usage.value();
    se.cost_check_disabled = e.cost_check_disabled.value();
    out.push_back(std::move(se));
  }
  return out;
}

Status Scr::Restore(const std::vector<PlanPtr>& plans,
                    const std::vector<SnapshotEntry>& entries) {
  if (store_.NumLive() != 0 || !instances_.empty()) {
    return Status::InvalidArgument(
        "Restore requires a freshly constructed (empty) cache");
  }
  std::vector<int> plan_ids;
  for (const auto& plan : plans) {
    if (plan == nullptr) return Status::InvalidArgument("null plan");
    OptimizationResult fake;
    fake.plan = plan;
    CachedPlan cached = MakeCachedPlan(fake);
    // Insert without the redundancy check (lambda_r < 1 disables it).
    PlanStore::StoreResult r = store_.StoreOrReuse(cached, {}, 0.0, -1.0,
                                                   /*engine=*/nullptr);
    plan_ids.push_back(r.plan_id);
  }
  for (const auto& se : entries) {
    if (se.plan_ordinal < 0 ||
        se.plan_ordinal >= static_cast<int>(plan_ids.size())) {
      return Status::InvalidArgument("instance entry has bad plan ordinal");
    }
    if (!(se.opt_cost > 0.0) || se.subopt < 1.0) {
      return Status::InvalidArgument("instance entry has bad cost fields");
    }
    // One template means one selectivity dimension; a mismatched entry is
    // corruption and would poison the k-d index and the sel check.
    if (se.v.size() != entries.front().v.size()) {
      return Status::InvalidArgument(
          "instance entry has mismatched selectivity dimensions");
    }
    InstanceEntry e;
    e.v = se.v;
    e.plan_id = plan_ids[static_cast<size_t>(se.plan_ordinal)];
    e.opt_cost = se.opt_cost;
    e.subopt = se.subopt;
    e.usage = se.usage;
    e.cost_check_disabled = se.cost_check_disabled;
    instances_.push_back(std::move(e));
    store_.AddUsage(instances_.back().plan_id, se.usage);
    if (options_.use_spatial_index) {
      if (index_ == nullptr) {
        index_ = std::make_unique<InstanceKdTree>(
            static_cast<int>(se.v.size()));
      }
      index_->Insert(static_cast<int64_t>(instances_.size()) - 1, se.v);
    }
    cost_sum_ += se.opt_cost;
    ++cost_count_;
  }
  return Status::OK();
}

int Scr::DropRedundantPlans(EngineContext* engine) {
  int dropped = 0;
  for (int plan_id : store_.LivePlanIds()) {
    // Collect the live instances served by this plan.
    std::vector<size_t> served;
    for (size_t i = 0; i < instances_.size(); ++i) {
      if (instances_[i].live && instances_[i].plan_id == plan_id) {
        served.push_back(i);
      }
    }
    // Each instance must have some *other* cached plan within its lambda
    // bound; record the best alternative per instance.
    struct Alt {
      int plan_id = -1;
      double subopt = 0.0;
    };
    std::vector<Alt> alts(served.size());
    bool all_covered = true;
    for (size_t s = 0; s < served.size() && all_covered; ++s) {
      const InstanceEntry& e = instances_[served[s]];
      double best = std::numeric_limits<double>::infinity();
      int best_id = -1;
      for (int other : store_.LivePlanIds()) {
        if (other == plan_id) continue;
        double c = engine->Recost(*store_.entry(other).plan, e.v);
        if (c < best) {
          best = c;
          best_id = other;
        }
      }
      double subopt = best / std::max(e.opt_cost, 1e-30);
      if (best_id >= 0 && subopt <= LambdaFor(e)) {
        alts[s] = Alt{best_id, subopt};
      } else {
        all_covered = false;
      }
    }
    if (!all_covered || served.empty()) continue;
    // Re-point the instances and drop the plan.
    for (size_t s = 0; s < served.size(); ++s) {
      InstanceEntry& e = instances_[served[s]];
      e.plan_id = alts[s].plan_id;
      e.subopt = alts[s].subopt;
      store_.AddUsage(alts[s].plan_id, e.usage.value());
    }
    store_.Drop(plan_id);
    ++dropped;
  }
  return dropped;
}

}  // namespace scrpqo

#include "pqo/ranges.h"

#include <algorithm>
#include <limits>

namespace scrpqo {

bool Ranges::Box::Contains(const SVector& sv, double margin) const {
  for (size_t i = 0; i < sv.size(); ++i) {
    if (sv[i] < lo[i] - margin || sv[i] > hi[i] + margin) return false;
  }
  return true;
}

double Ranges::Box::Volume(double margin) const {
  double v = 1.0;
  for (size_t i = 0; i < lo.size(); ++i) {
    v *= (hi[i] - lo[i]) + 2.0 * margin;
  }
  return v;
}

void Ranges::Box::Extend(const SVector& sv) {
  for (size_t i = 0; i < sv.size(); ++i) {
    lo[i] = std::min(lo[i], sv[i]);
    hi[i] = std::max(hi[i], sv[i]);
  }
}

PlanChoice Ranges::OnInstance(const WorkloadInstance& wi,
                              EngineContext* engine) {
  PlanChoice choice;
  const SVector& sv = wi.svector;

  // Smallest containing rectangle wins (deterministic tie-break).
  int best = -1;
  double best_volume = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < boxes_.size(); ++i) {
    if (!store_.entry(boxes_[i].plan_id).live) continue;
    if (boxes_[i].Contains(sv, options_.margin)) {
      double vol = boxes_[i].Volume(options_.margin);
      if (vol < best_volume) {
        best_volume = vol;
        best = static_cast<int>(i);
      }
    }
  }
  if (best >= 0) {
    store_.AddUsage(boxes_[static_cast<size_t>(best)].plan_id, 1);
    choice.plan = store_.entry(boxes_[static_cast<size_t>(best)].plan_id).plan;
    return choice;
  }

  auto result = engine->Optimize(wi);
  choice.optimized = true;
  CachedPlan cached = MakeCachedPlan(*result);
  PlanStore::StoreResult stored = store_.StoreOrReuse(
      cached, sv, result->cost, options_.recost_redundancy_lambda_r, engine);
  // Extend this plan's rectangle (or create it).
  bool found = false;
  for (auto& box : boxes_) {
    if (box.plan_id == stored.plan_id) {
      box.Extend(sv);
      found = true;
      break;
    }
  }
  if (!found) {
    boxes_.push_back(Box{stored.plan_id, sv, sv});
  }
  choice.plan = store_.entry(stored.plan_id).plan;
  return choice;
}

}  // namespace scrpqo

#include "pqo/pcm.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "obs/scoped_timer.h"
#include "obs/emit.h"

namespace scrpqo {

namespace {

/// a dominates b when a >= b in every selectivity dimension.
bool Dominates(const SVector& a, const SVector& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

}  // namespace

std::string Pcm::name() const {
  std::ostringstream os;
  os << "PCM" << options_.lambda;
  if (options_.recost_redundancy_lambda_r >= 1.0) os << "+R";
  return os.str();
}

void Pcm::SetObs(const ObsHooks& hooks) {
  obs_ = hooks;
  if (obs_.metrics != nullptr) {
    cost_check_hits_ = obs_.metrics->counter("decision.cost_check_hits");
    optimized_ = obs_.metrics->counter("decision.optimized");
    redundant_discards_ =
        obs_.metrics->counter("decision.redundant_discards");
    degraded_ = obs_.metrics->counter("pqo.degraded_decisions");
    get_plan_micros_ = obs_.metrics->histogram("pcm.get_plan_micros");
  } else {
    cost_check_hits_ = optimized_ = redundant_discards_ = degraded_ =
        nullptr;
    get_plan_micros_ = nullptr;
  }
}

void Pcm::EmitEvent(DecisionEvent event, int instance_id,
                    std::chrono::steady_clock::time_point start) {
  if (obs_.tracer == nullptr) return;
  event.instance_id = instance_id;
  event.technique = name();
  event.wall_micros = ScopedTimer::ElapsedMicros(start);
  if (const StageBreakdown* b = SpanContext::Current()) {
    event.stages = *b;
  }
  EmitDecisionEvent(obs_.tracer, std::move(event));
}

PlanChoice Pcm::OnInstance(const WorkloadInstance& wi, EngineContext* engine) {
  GetPlanSpan span(obs_.tracer != nullptr);
  std::chrono::steady_clock::time_point start{};
  if (obs_.tracer != nullptr) start = std::chrono::steady_clock::now();
  ScopedTimer get_plan_timer(get_plan_micros_);
  PlanChoice choice;
  const SVector& sv = wi.svector;

  // Inference: cheapest dominating point q2 and costliest dominated point
  // q1; reuse q2's plan iff cost(q2) <= lambda * cost(q1). Under PCM,
  // cost(P2, qc) <= cost(P2, q2) and opt(qc) >= opt(q1), so the chosen
  // plan's sub-optimality is bounded by lambda. The dominance scan is
  // PCM's analogue of SCR's selectivity check, so it shares that stage.
  StageTimer sel_timer(Stage::kSelCheck, nullptr);
  double best_upper = std::numeric_limits<double>::infinity();
  int upper_plan = -1;
  double best_lower = 0.0;
  bool have_lower = false;
  for (const Point& p : points_) {
    if (Dominates(p.sv, sv)) {
      if (p.opt_cost < best_upper) {
        best_upper = p.opt_cost;
        upper_plan = p.plan_id;
      }
    }
    if (Dominates(sv, p.sv)) {
      if (!have_lower || p.opt_cost > best_lower) {
        best_lower = p.opt_cost;
        have_lower = true;
      }
    }
  }
  sel_timer.Stop();
  // Non-finite guard on the cost ratio R = best_upper / best_lower: a NaN
  // compares false through the bound below (no unsound reuse), but the
  // explicit check keeps an inf/NaN from reaching the traced `r` and the
  // stats pipeline.
  if (upper_plan >= 0 && have_lower && best_lower > 0.0 &&
      std::isfinite(best_upper) && std::isfinite(best_lower) &&
      best_upper <= options_.lambda * best_lower) {
    store_.AddUsage(upper_plan, 1);
    choice.plan = store_.entry(upper_plan).plan;
    if (cost_check_hits_ != nullptr) cost_check_hits_->Increment();
    if (obs_.tracer != nullptr) {
      DecisionEvent ev;
      ev.outcome = DecisionOutcome::kCostCheckHit;
      ev.matched_entry = upper_plan;
      // PCM's inference check is r <= lambda (no L/S factors involved).
      ev.r = best_upper / best_lower;
      ev.lambda = options_.lambda;
      ev.candidates_scanned = static_cast<int32_t>(points_.size());
      EmitEvent(std::move(ev), wi.id, start);
    }
    return choice;
  }

  // Optimize and store.
  auto result = engine->Optimize(wi);
  if (result == nullptr) [[unlikely]] {
    // Optimizer unavailable: serve the cheapest cached plan by recost,
    // without the guarantee (traced as kDegraded, lambda unset).
    choice.degraded = true;
    int best_id = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int id : store_.LivePlanIds()) {
      double c = engine->Recost(*store_.entry(id).plan, sv);
      ++choice.recost_calls_in_get_plan;
      if (std::isfinite(c) && c < best_cost) {
        best_cost = c;
        best_id = id;
      }
    }
    if (best_id >= 0) {
      store_.AddUsage(best_id, 1);
      choice.plan = store_.entry(best_id).plan;
    }
    if (degraded_ != nullptr) degraded_->Increment();
    if (obs_.tracer != nullptr) {
      DecisionEvent ev;
      ev.outcome = DecisionOutcome::kDegraded;
      ev.matched_entry = best_id;
      ev.recost_calls = choice.recost_calls_in_get_plan;
      EmitEvent(std::move(ev), wi.id, start);
    }
    return choice;
  }
  choice.optimized = true;
  CachedPlan cached = MakeCachedPlan(*result);
  // The H.6 redundancy variant issues Recost calls inside StoreOrReuse;
  // charge them to this getPlan so max_recost_per_get_plan reflects PCM+R.
  int64_t recosts_before = engine->num_recost_calls();
  StageTimer manage_timer(Stage::kManageCache, nullptr);
  PlanStore::StoreResult stored = store_.StoreOrReuse(
      cached, sv, result->cost, options_.recost_redundancy_lambda_r, engine);
  manage_timer.Stop();
  choice.recost_calls_in_get_plan =
      static_cast<int>(engine->num_recost_calls() - recosts_before);
  // A non-finite optimal cost must never seed an inference point: it
  // would poison every future dominance bound it participates in. The
  // plan is still served (it is the optimizer's answer); only inference
  // from this instance is quarantined.
  if (std::isfinite(result->cost) && result->cost > 0.0) {
    points_.push_back(Point{sv, result->cost, stored.plan_id});
  }
  choice.plan = store_.entry(stored.plan_id).plan;
  if (stored.reused_existing) {
    if (redundant_discards_ != nullptr) redundant_discards_->Increment();
  } else if (optimized_ != nullptr) {
    optimized_->Increment();
  }
  if (obs_.tracer != nullptr) {
    DecisionEvent ev;
    ev.outcome = stored.reused_existing
                     ? DecisionOutcome::kRedundantDiscard
                     : DecisionOutcome::kOptimized;
    ev.matched_entry = stored.plan_id;
    if (stored.reused_existing) {
      ev.r = stored.subopt;
      ev.subopt = stored.subopt;
      ev.lambda = options_.recost_redundancy_lambda_r;
    }
    ev.candidates_scanned = static_cast<int32_t>(points_.size()) - 1;
    ev.recost_calls = choice.recost_calls_in_get_plan;
    EmitEvent(std::move(ev), wi.id, start);
  }
  return choice;
}

}  // namespace scrpqo

#include "pqo/pcm.h"

#include <limits>
#include <sstream>

namespace scrpqo {

namespace {

/// a dominates b when a >= b in every selectivity dimension.
bool Dominates(const SVector& a, const SVector& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

}  // namespace

std::string Pcm::name() const {
  std::ostringstream os;
  os << "PCM" << options_.lambda;
  if (options_.recost_redundancy_lambda_r >= 1.0) os << "+R";
  return os.str();
}

PlanChoice Pcm::OnInstance(const WorkloadInstance& wi, EngineContext* engine) {
  PlanChoice choice;
  const SVector& sv = wi.svector;

  // Inference: cheapest dominating point q2 and costliest dominated point
  // q1; reuse q2's plan iff cost(q2) <= lambda * cost(q1). Under PCM,
  // cost(P2, qc) <= cost(P2, q2) and opt(qc) >= opt(q1), so the chosen
  // plan's sub-optimality is bounded by lambda.
  double best_upper = std::numeric_limits<double>::infinity();
  int upper_plan = -1;
  double best_lower = 0.0;
  bool have_lower = false;
  for (const Point& p : points_) {
    if (Dominates(p.sv, sv)) {
      if (p.opt_cost < best_upper) {
        best_upper = p.opt_cost;
        upper_plan = p.plan_id;
      }
    }
    if (Dominates(sv, p.sv)) {
      if (!have_lower || p.opt_cost > best_lower) {
        best_lower = p.opt_cost;
        have_lower = true;
      }
    }
  }
  if (upper_plan >= 0 && have_lower && best_lower > 0.0 &&
      best_upper <= options_.lambda * best_lower) {
    store_.AddUsage(upper_plan, 1);
    choice.plan = store_.entry(upper_plan).plan;
    return choice;
  }

  // Optimize and store.
  auto result = engine->Optimize(wi);
  choice.optimized = true;
  CachedPlan cached = MakeCachedPlan(*result);
  PlanStore::StoreResult stored = store_.StoreOrReuse(
      cached, sv, result->cost, options_.recost_redundancy_lambda_r, engine);
  points_.push_back(Point{sv, result->cost, stored.plan_id});
  choice.plan = store_.entry(stored.plan_id).plan;
  return choice;
}

}  // namespace scrpqo

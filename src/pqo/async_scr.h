// Asynchronous manageCache (paper Section 4.1: "Since manageCache does not
// need to occur on the critical path of query execution, it can be
// implemented asynchronously on a background thread").
//
// AsyncScr keeps getPlan (selectivity + cost checks) synchronous while
// redundancy checks and plan-store updates run on a worker thread. When the
// cache misses, the instance is optimized synchronously (the query needs a
// plan to execute) and the freshly optimized plan is returned directly; the
// manageCache work — redundancy check, store-or-reject, budget enforcement
// — happens in the background. Net effect: identical guarantee, lower
// critical-path latency, with the small semantic difference that an
// instance arriving before its predecessor's manageCache completes may
// trigger an extra optimizer call.
//
// Concurrency model: the cache is guarded by a reader/writer lock. getPlan
// reuse attempts take the shared side, so any number of request threads can
// run selectivity and cost checks simultaneously (everything TryReuse
// writes is a relaxed atomic); only the worker's deferred manageCache takes
// the exclusive side. The task queue has its own plain mutex so producers
// never serialize behind in-flight cache reads. Lock-acquisition counters
// ("async_scr.lock_shared" / "async_scr.lock_exclusive") expose the
// read/write mix through the metrics registry.
//
// Every field's guarding capability is declared with GUARDED_BY, so a
// read outside the right lock is a compile error under
// SCRPQO_THREAD_SAFETY=ON (see common/thread_annotations.h). Lock order:
// queue_mu_ and cache_mu_ are never held together — the worker drops the
// queue lock before taking the cache lock, and producers release the
// cache lock before enqueueing.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <thread>

#include "common/thread_annotations.h"
#include "pqo/scr.h"

namespace scrpqo {

class AsyncScr : public PqoTechnique {
 public:
  explicit AsyncScr(ScrOptions options);
  ~AsyncScr() override;

  /// Computed once at construction (the analysis would otherwise demand
  /// the cache lock for the inner_.name() read on every call).
  std::string name() const override { return name_; }

  /// Forwards the sinks to the wrapped Scr. Decision events for misses are
  /// emitted by the worker thread when the deferred manageCache runs, and
  /// sel/cost-check hits may be emitted from concurrent request threads, so
  /// the sinks must be thread-safe (Tracer and MetricsRegistry are).
  void SetObs(const ObsHooks& hooks) override EXCLUDES(cache_mu_);

  PlanChoice OnInstance(const WorkloadInstance& wi, EngineContext* engine)
      override EXCLUDES(cache_mu_, queue_mu_);

  /// Blocks until every queued manageCache task has been applied. Tests and
  /// metric collection call this before inspecting cache state.
  void Flush() EXCLUDES(queue_mu_);

  void FlushBackgroundWork() override { Flush(); }

  int64_t NumPlansCached() const override EXCLUDES(cache_mu_);
  int64_t PeakPlansCached() const override EXCLUDES(cache_mu_);

  /// manageCache tasks executed on the worker so far.
  int64_t tasks_processed() const EXCLUDES(queue_mu_);

  // --- cross-template budget support (see Scr's counterparts). Each call
  // takes the appropriate side of the cache lock, so PqoManager's global
  // evictor can drive any mix of Scr / AsyncScr caches without knowing
  // about this class's locking. ---

  /// LFU frontier of the wrapped cache (shared lock).
  int64_t MinLivePlanUsage(uint64_t pinned_signature = 0) const
      EXCLUDES(cache_mu_);

  /// Evicts one LFU plan under the exclusive lock; see Scr::EvictLfuPlan.
  bool EvictLfuPlan(int instance_id, uint64_t pinned_signature = 0)
      EXCLUDES(cache_mu_);

  /// Estimated cache heap bytes (shared lock).
  int64_t EstimatedMemoryBytes() const EXCLUDES(cache_mu_);

  /// Forwards the per-template scope label; call before serving traffic.
  void SetScopeLabel(std::string label) EXCLUDES(cache_mu_);

 private:
  struct Task {
    WorkloadInstance wi;
    std::shared_ptr<const OptimizationResult> result;
    /// Stats of the failed critical-path reuse attempt, forwarded into the
    /// deferred decision event.
    int get_plan_recosts = 0;
    int get_plan_candidates = 0;
    /// Stage breakdown of the critical-path half (failed reuse attempt +
    /// optimize), seeded into the worker's span so the deferred decision
    /// event attributes the full getPlan, not just the manageCache tail.
    StageBreakdown stages;
  };

  void WorkerLoop();

  /// The warmed getPlan fast path: one shared acquisition of cache_mu_
  /// around the inner SCR's reuse attempt. Split out of OnInstance so the
  /// effect analyzer (tools/analyze) can root its SCRPQO_HOT /
  /// SCRPQO_NOALLOC / SCRPQO_NONBLOCKING / SCRPQO_LOCK_BOUNDED(cache_mu_)
  /// contracts at exactly the code a cache hit executes.
  bool TryReuseFast(const WorkloadInstance& wi, EngineContext* engine,
                    PlanChoice* probe) EXCLUDES(cache_mu_);

  /// Reader/writer split over the cache: shared for TryReuse (and stat
  /// reads), exclusive for the worker's RegisterOptimization and SetObs.
  mutable SharedMutex cache_mu_;

  /// The wrapped synchronous cache. Thread-compatible, so every method
  /// call on it must hold cache_mu_ (shared for the read-only reuse
  /// attempt and stat reads — everything TryReuse writes is a relaxed
  /// atomic — exclusive for structural manageCache updates).
  Scr inner_ GUARDED_BY(cache_mu_);

  /// Deferred-manageCache tasks a miss may leave outstanding before the
  /// next miss blocks for the worker. Bounds how stale the cache can get
  /// (and queue memory): without it, a tight request loop on a loaded
  /// machine can starve the worker for an entire sequence, so no getPlan
  /// ever sees the plans its predecessors optimized.
  static constexpr size_t kMaxPendingTasks = 2;

  /// Queue plumbing, guarded independently of the cache lock.
  mutable Mutex queue_mu_;
  CondVar work_available_;
  CondVar space_available_;
  CondVar idle_;
  std::deque<Task> queue_ GUARDED_BY(queue_mu_);
  bool shutting_down_ GUARDED_BY(queue_mu_) = false;
  bool worker_busy_ GUARDED_BY(queue_mu_) = false;
  int64_t tasks_processed_ GUARDED_BY(queue_mu_) = 0;
  /// Engine used by background tasks (set per OnInstance call; the harness
  /// uses one engine per sequence so this is stable in practice).
  std::atomic<EngineContext*> engine_{nullptr};
  /// Lock-mix counters (null without a metrics registry). Written by
  /// SetObs under the exclusive cache lock; request threads read them
  /// under at least the shared side.
  Counter* lock_shared_ GUARDED_BY(cache_mu_) = nullptr;
  Counter* lock_exclusive_ GUARDED_BY(cache_mu_) = nullptr;
  /// Deferred manageCache tasks dropped by the async_scr.task_fail fault
  /// point ("async_scr.tasks_dropped").
  Counter* tasks_dropped_ GUARDED_BY(cache_mu_) = nullptr;
  /// Whether getPlan spans are collected (tracer attached). Atomic: read
  /// on every OnInstance and by the worker, written by SetObs.
  std::atomic<bool> span_enabled_{false};
  /// "Async" + inner name; immutable after the constructor.
  std::string name_;
  std::thread worker_;
};

}  // namespace scrpqo

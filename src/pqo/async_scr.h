// Asynchronous manageCache (paper Section 4.1: "Since manageCache does not
// need to occur on the critical path of query execution, it can be
// implemented asynchronously on a background thread").
//
// AsyncScr keeps getPlan (selectivity + cost checks) synchronous while
// redundancy checks and plan-store updates run on a worker thread. When the
// cache misses, the instance is optimized synchronously (the query needs a
// plan to execute) and the freshly optimized plan is returned directly; the
// manageCache work — redundancy check, store-or-reject, budget enforcement
// — happens in the background. Net effect: identical guarantee, lower
// critical-path latency, with the small semantic difference that an
// instance arriving before its predecessor's manageCache completes may
// trigger an extra optimizer call.
//
// Concurrency model: the cache is guarded by a reader/writer lock. getPlan
// reuse attempts take the shared side, so any number of request threads can
// run selectivity and cost checks simultaneously (everything TryReuse
// writes is a relaxed atomic); only the worker's deferred manageCache takes
// the exclusive side. The task queue has its own plain mutex so producers
// never serialize behind in-flight cache reads. Lock-acquisition counters
// ("async_scr.lock_shared" / "async_scr.lock_exclusive") expose the
// read/write mix through the metrics registry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "pqo/scr.h"

namespace scrpqo {

class AsyncScr : public PqoTechnique {
 public:
  explicit AsyncScr(ScrOptions options);
  ~AsyncScr() override;

  std::string name() const override { return "Async" + inner_.name(); }

  /// Forwards the sinks to the wrapped Scr. Decision events for misses are
  /// emitted by the worker thread when the deferred manageCache runs, and
  /// sel/cost-check hits may be emitted from concurrent request threads, so
  /// the sinks must be thread-safe (Tracer and MetricsRegistry are).
  void SetObs(const ObsHooks& hooks) override;

  PlanChoice OnInstance(const WorkloadInstance& wi,
                        EngineContext* engine) override;

  /// Blocks until every queued manageCache task has been applied. Tests and
  /// metric collection call this before inspecting cache state.
  void Flush();

  void FlushBackgroundWork() override { Flush(); }

  int64_t NumPlansCached() const override;
  int64_t PeakPlansCached() const override;

  /// manageCache tasks executed on the worker so far.
  int64_t tasks_processed() const;

  // --- cross-template budget support (see Scr's counterparts). Each call
  // takes the appropriate side of the cache lock, so PqoManager's global
  // evictor can drive any mix of Scr / AsyncScr caches without knowing
  // about this class's locking. ---

  /// LFU frontier of the wrapped cache (shared lock).
  int64_t MinLivePlanUsage(uint64_t pinned_signature = 0) const;

  /// Evicts one LFU plan under the exclusive lock; see Scr::EvictLfuPlan.
  bool EvictLfuPlan(int instance_id, uint64_t pinned_signature = 0);

  /// Estimated cache heap bytes (shared lock).
  int64_t EstimatedMemoryBytes() const;

  /// Forwards the per-template scope label; call before serving traffic.
  void SetScopeLabel(std::string label);

 private:
  struct Task {
    WorkloadInstance wi;
    std::shared_ptr<const OptimizationResult> result;
    /// Stats of the failed critical-path reuse attempt, forwarded into the
    /// deferred decision event.
    int get_plan_recosts = 0;
    int get_plan_candidates = 0;
    /// Stage breakdown of the critical-path half (failed reuse attempt +
    /// optimize), seeded into the worker's span so the deferred decision
    /// event attributes the full getPlan, not just the manageCache tail.
    StageBreakdown stages;
  };

  void WorkerLoop();

  Scr inner_;

  /// Reader/writer split over the cache: shared for TryReuse (and stat
  /// reads), exclusive for the worker's RegisterOptimization and SetObs.
  mutable std::shared_mutex cache_mu_;

  /// Deferred-manageCache tasks a miss may leave outstanding before the
  /// next miss blocks for the worker. Bounds how stale the cache can get
  /// (and queue memory): without it, a tight request loop on a loaded
  /// machine can starve the worker for an entire sequence, so no getPlan
  /// ever sees the plans its predecessors optimized.
  static constexpr size_t kMaxPendingTasks = 2;

  /// Queue plumbing, guarded independently of the cache lock.
  mutable std::mutex queue_mu_;
  std::condition_variable work_available_;
  std::condition_variable space_available_;
  std::condition_variable idle_;
  std::deque<Task> queue_;
  bool shutting_down_ = false;
  bool worker_busy_ = false;
  int64_t tasks_processed_ = 0;
  /// Engine used by background tasks (set per OnInstance call; the harness
  /// uses one engine per sequence so this is stable in practice).
  std::atomic<EngineContext*> engine_{nullptr};
  /// Lock-mix counters (null without a metrics registry).
  Counter* lock_shared_ = nullptr;
  Counter* lock_exclusive_ = nullptr;
  /// Whether getPlan spans are collected (tracer attached). Atomic: read
  /// on every OnInstance and by the worker, written by SetObs.
  std::atomic<bool> span_enabled_{false};
  std::thread worker_;
};

}  // namespace scrpqo

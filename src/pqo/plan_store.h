// Shared plan-cache bookkeeping: a list of distinct plans keyed by
// structural signature, with peak-size tracking and an optional Recost-based
// redundancy check on insert (used natively by SCR, and by the
// Recost-augmented baseline variants of the paper's Appendix H.6).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "optimizer/recost.h"
#include "pqo/engine_context.h"

namespace scrpqo {

class PlanStore {
 public:
  struct Entry {
    std::shared_ptr<const CachedPlan> plan;
    /// Aggregate usage across instance entries pointing at this plan (for
    /// LFU eviction under a plan budget).
    int64_t total_usage = 0;
    bool live = true;
  };

  /// Outcome of StoreOrReuse.
  struct StoreResult {
    int plan_id = -1;
    /// Sub-optimality of the stored/reused plan at the optimized instance
    /// (1.0 when the new plan itself was stored or already present).
    double subopt = 1.0;
    /// True when the redundancy check discarded the new plan in favor of an
    /// existing one.
    bool reused_existing = false;
    /// True when the new plan's signature was already present.
    bool already_present = false;
  };

  /// Registers the optimal plan found for an instance with optimal cost
  /// `opt_cost` at selectivities `sv`. When `lambda_r >= 1` and the plan is
  /// new, runs the redundancy check: re-costs every live cached plan at `sv`
  /// (charged to `engine`) and discards the new plan if the best cached one
  /// is within `lambda_r` of optimal (paper Section 6.3).
  StoreResult StoreOrReuse(const CachedPlan& plan, const SVector& sv,
                           double opt_cost, double lambda_r,
                           EngineContext* engine);

  const Entry& entry(int plan_id) const {
    return entries_[static_cast<size_t>(plan_id)];
  }
  Entry& entry(int plan_id) { return entries_[static_cast<size_t>(plan_id)]; }

  void AddUsage(int plan_id, int64_t delta) {
    entries_[static_cast<size_t>(plan_id)].total_usage += delta;
  }

  /// Live plan ids.
  std::vector<int> LivePlanIds() const;

  /// Marks a plan dead (budget eviction). The caller is responsible for
  /// removing instance entries that point at it.
  void Drop(int plan_id);

  /// Live plan with the minimum total usage (LFU victim), -1 if none.
  int MinUsagePlanId() const;

  int64_t NumLive() const { return num_live_; }
  int64_t Peak() const { return peak_; }

 private:
  std::vector<Entry> entries_;
  std::map<uint64_t, int> by_signature_;
  int64_t num_live_ = 0;
  int64_t peak_ = 0;
};

}  // namespace scrpqo

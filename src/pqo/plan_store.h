// Shared plan-cache bookkeeping: a list of distinct plans keyed by
// structural signature, with peak-size tracking and an optional Recost-based
// redundancy check on insert (used natively by SCR, and by the
// Recost-augmented baseline variants of the paper's Appendix H.6).
//
// Read-path concurrency: entry() lookups and AddUsage() run under the
// owning technique's shared (read) lock, so usage counters are relaxed
// atomics; all structural mutation (StoreOrReuse/Drop) happens under the
// exclusive lock.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/atomics.h"
#include "common/status.h"
#include "optimizer/recost.h"
#include "optimizer/recost_bundle.h"
#include "pqo/engine_context.h"

namespace scrpqo {

class PlanStore {
 public:
  struct Entry {
    std::shared_ptr<const CachedPlan> plan;
    /// Aggregate usage across instance entries pointing at this plan (for
    /// LFU eviction under a plan budget). Bumped from the concurrent
    /// getPlan read path.
    RelaxedCounter<int64_t> total_usage = 0;
    bool live = true;
  };

  /// Outcome of StoreOrReuse.
  struct StoreResult {
    int plan_id = -1;
    /// Sub-optimality of the stored/reused plan at the optimized instance
    /// (1.0 when the new plan itself was stored or already present).
    double subopt = 1.0;
    /// True when the redundancy check discarded the new plan in favor of an
    /// existing one.
    bool reused_existing = false;
    /// True when the new plan's signature was already present.
    bool already_present = false;
  };

  /// Registers the optimal plan found for an instance with optimal cost
  /// `opt_cost` at selectivities `sv`. When `lambda_r >= 1` and the plan is
  /// new, runs the redundancy check as one batched Recost sweep over the
  /// live cached plans (charged to `engine`), early-exiting once the
  /// running best is already within `lambda_r` of optimal, and discards the
  /// new plan in favor of that best cached one (paper Section 6.3).
  StoreResult StoreOrReuse(const CachedPlan& plan, const SVector& sv,
                           double opt_cost, double lambda_r,
                           EngineContext* engine);

  /// Bounds-checked entry access. Dead entries remain readable (callers
  /// filter on `.live`); only ids never handed out by StoreOrReuse abort.
  const Entry& entry(int plan_id) const {
    CheckId(plan_id);
    return entries_[static_cast<size_t>(plan_id)];
  }
  Entry& entry(int plan_id) {
    CheckId(plan_id);
    return entries_[static_cast<size_t>(plan_id)];
  }

  /// Thread-safe under the shared (read) lock.
  void AddUsage(int plan_id, int64_t delta) {
    CheckId(plan_id);
    entries_[static_cast<size_t>(plan_id)].total_usage.Add(delta);
  }

  /// Live plan ids.
  std::vector<int> LivePlanIds() const;

  /// Marks a plan dead (budget eviction). The caller is responsible for
  /// removing instance entries that point at it.
  void Drop(int plan_id);

  /// Live plan with the minimum total usage (LFU victim), -1 if none.
  /// `exclude_plan_id` (>= 0) removes one plan from consideration — the
  /// budget-eviction caller pins the plan just chosen for the in-flight
  /// instance so the freshest plan can never be its own victim.
  int MinUsagePlanId(int exclude_plan_id = -1) const;

  /// Live plan id with the given structural signature, -1 if absent or
  /// dead. Used to translate cross-template eviction pins (which travel as
  /// signatures, since plan ids are store-local) back into ids.
  int FindLiveBySignature(uint64_t signature) const;

  int64_t NumLive() const { return num_live_; }
  int64_t Peak() const { return peak_; }

  /// The SIMD recost bundle packing the live plans' flat programs,
  /// maintained by StoreOrReuse/Drop. Readers (SCR's cost check) must
  /// hold the owning technique's shared lock.
  const RecostBundle& bundle() const { return bundle_; }

  /// True when every live plan is packed in bundle() — the precondition
  /// for serving a sweep or cost check entirely from the bundle. False
  /// while any live plan was rejected by RecostBundle::Add (hand-built /
  /// restored plans with no compiled program, or programs too long to
  /// pack); those revert the affected sweeps to the scalar path.
  bool BundleComplete() const { return num_unbundled_ == 0; }

  /// Wires the bundle's batching telemetry ("recost.lanes_active",
  /// "recost.bundle_rebuilds"); either may be nullptr.
  void SetObsCounters(Counter* lanes_active, Counter* bundle_rebuilds) {
    bundle_.SetObsCounters(lanes_active, bundle_rebuilds);
  }

 private:
  void CheckId(int plan_id) const {
    SCRPQO_CHECK(plan_id >= 0 &&
                     plan_id < static_cast<int>(entries_.size()),
                 "plan id out of range for plan store");
  }

  std::vector<Entry> entries_;
  std::map<uint64_t, int> by_signature_;
  int64_t num_live_ = 0;
  int64_t peak_ = 0;
  RecostBundle bundle_;
  /// Live plans RecostBundle::Add rejected (see BundleComplete).
  int64_t num_unbundled_ = 0;
};

}  // namespace scrpqo

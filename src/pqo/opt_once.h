// Optimize-Once: optimize the first instance and reuse its plan for every
// later instance — the default behaviour of commercial plan caches the paper
// cites (Section 1). Arbitrarily sub-optimal, but a single optimizer call.
#pragma once

#include <memory>

#include "pqo/technique.h"

namespace scrpqo {

/// \brief The overhead gold standard: one optimizer call ever, with
/// unbounded sub-optimality risk for every later instance.
class OptOnce : public PqoTechnique {
 public:
  std::string name() const override { return "OptOnce"; }

  PlanChoice OnInstance(const WorkloadInstance& wi,
                        EngineContext* engine) override;

  int64_t NumPlansCached() const override { return cached_ ? 1 : 0; }

 private:
  std::shared_ptr<const CachedPlan> cached_;
};

}  // namespace scrpqo

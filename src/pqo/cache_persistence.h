// Plan-cache persistence: snapshot an SCR cache to text and restore it into
// a fresh technique instance. Plans are instance-independent (parameter
// slots, not values), so a restored cache is immediately usable for new
// query instances — the PQO analogue of a persisted plan store surviving a
// server restart.
//
// Format: one header line, then one line per live plan
// (`P <subopt-table-idx...>` style is avoided — each line is
// `P <serialized plan>`), then one line per live instance entry
// (`I <plan-ordinal> <opt_cost> <subopt> <usage> <disabled> <d> <sv...>`).
#pragma once

#include <string>

#include "common/status.h"
#include "pqo/scr.h"

namespace scrpqo {

/// Upper bound on a snapshot entry's selectivity-vector dimension.
/// Templates carry one dimension per parameterized predicate, so real
/// snapshots stay far below this; anything larger is treated as
/// corruption (it would otherwise size an e.v.resize() allocation).
inline constexpr int64_t kMaxSnapshotDims = 256;

/// What a lenient (valid-prefix) restore kept and dropped.
struct SnapshotRestoreReport {
  int plans_restored = 0;
  int entries_restored = 0;
  /// Records dropped from the first corrupt line onward.
  int records_dropped = 0;
  /// Parse error of the first corrupt record (empty when nothing dropped).
  std::string first_error;
};

/// Serializes the live portion of the cache (plans + instance entries).
std::string SaveScrCache(const Scr& scr);

/// Parses a snapshot into its plan and instance-entry lists without
/// touching any Scr instance. Shared by LoadScrCache and the offline
/// guarantee auditor (verify/guarantee_audit.h), which wants the raw
/// records so it can report on entries Restore would reject.
Status ParseScrCacheSnapshot(const std::string& snapshot,
                             std::vector<PlanPtr>* plans,
                             std::vector<Scr::SnapshotEntry>* entries);

/// Lenient variant for crash/corruption recovery: keeps every record up
/// to the first malformed line (the valid prefix — what a crash mid-write
/// or a flipped byte leaves behind) and reports what was dropped instead
/// of failing the whole restore. Only the header must be intact.
Status ParseScrCacheSnapshotLenient(const std::string& snapshot,
                                    std::vector<PlanPtr>* plans,
                                    std::vector<Scr::SnapshotEntry>* entries,
                                    SnapshotRestoreReport* report);

/// Restores a snapshot into `scr`, which must be freshly constructed (its
/// cache empty) and configured compatibly (same lambda family). Returns
/// InvalidArgument on malformed input.
Status LoadScrCache(const std::string& snapshot, Scr* scr);

/// Valid-prefix restore (see ParseScrCacheSnapshotLenient); `scr` must be
/// fresh. Returns OK with a partial cache on mid-file corruption.
Status LoadScrCacheLenient(const std::string& snapshot, Scr* scr,
                           SnapshotRestoreReport* report);

/// File convenience wrappers. Saving writes to a temporary file, checks
/// the stream, and atomically renames into place, so a crash mid-save
/// never leaves a truncated snapshot at `path`. Loading honors the
/// snapshot.truncate / snapshot.bitflip fault points (chaos testing).
Status SaveScrCacheToFile(const Scr& scr, const std::string& path);
Status LoadScrCacheFromFile(const std::string& path, Scr* scr);
Status LoadScrCacheFromFileLenient(const std::string& path, Scr* scr,
                                   SnapshotRestoreReport* report);

}  // namespace scrpqo

// Plan-cache persistence: snapshot an SCR cache to text and restore it into
// a fresh technique instance. Plans are instance-independent (parameter
// slots, not values), so a restored cache is immediately usable for new
// query instances — the PQO analogue of a persisted plan store surviving a
// server restart.
//
// Format: one header line, then one line per live plan
// (`P <subopt-table-idx...>` style is avoided — each line is
// `P <serialized plan>`), then one line per live instance entry
// (`I <plan-ordinal> <opt_cost> <subopt> <usage> <disabled> <d> <sv...>`).
#pragma once

#include <string>

#include "common/status.h"
#include "pqo/scr.h"

namespace scrpqo {

/// Serializes the live portion of the cache (plans + instance entries).
std::string SaveScrCache(const Scr& scr);

/// Parses a snapshot into its plan and instance-entry lists without
/// touching any Scr instance. Shared by LoadScrCache and the offline
/// guarantee auditor (verify/guarantee_audit.h), which wants the raw
/// records so it can report on entries Restore would reject.
Status ParseScrCacheSnapshot(const std::string& snapshot,
                             std::vector<PlanPtr>* plans,
                             std::vector<Scr::SnapshotEntry>* entries);

/// Restores a snapshot into `scr`, which must be freshly constructed (its
/// cache empty) and configured compatibly (same lambda family). Returns
/// InvalidArgument on malformed input.
Status LoadScrCache(const std::string& snapshot, Scr* scr);

/// File convenience wrappers.
Status SaveScrCacheToFile(const Scr& scr, const std::string& path);
Status LoadScrCacheFromFile(const std::string& path, Scr* scr);

}  // namespace scrpqo

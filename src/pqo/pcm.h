// PCM (Bounded Progressive Parametric Query Optimization, Bizarro et al.,
// TKDE 2009): the only prior online technique with a sub-optimality
// guarantee. Inference (paper Table 1): reuse is allowed when the new
// instance lies in the rectangle spanned by two previously optimized
// instances q1 <= qc <= q2 (component-wise selectivity domination) whose
// optimal costs are within the lambda factor; the dominating instance's
// plan is then lambda-optimal at qc under the Plan Cost Monotonicity
// assumption.
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "pqo/plan_store.h"
#include "pqo/technique.h"

namespace scrpqo {

struct PcmOptions {
  double lambda = 2.0;
  /// Appendix H.6 variant: when >= 1, run the Recost redundancy check
  /// before storing a new plan (not part of the original technique).
  double recost_redundancy_lambda_r = -1.0;
};

class Pcm : public PqoTechnique {
 public:
  explicit Pcm(PcmOptions options) : options_(options) {}

  std::string name() const override;

  /// Attaches decision tracing / metrics. PCM's dominance inference is a
  /// pure cost-bound check, so reuse is traced as cost-check-hit with
  /// R = cost(q2)/cost(q1) and G/L left unset.
  void SetObs(const ObsHooks& hooks) override;

  PlanChoice OnInstance(const WorkloadInstance& wi,
                        EngineContext* engine) override;

  int64_t NumPlansCached() const override { return store_.NumLive(); }
  int64_t PeakPlansCached() const override { return store_.Peak(); }

 private:
  void EmitEvent(DecisionEvent event, int instance_id,
                 std::chrono::steady_clock::time_point start);
  struct Point {
    SVector sv;
    double opt_cost = 0.0;
    int plan_id = -1;
  };

  PcmOptions options_;
  PlanStore store_;
  std::vector<Point> points_;

  // --- observability (null = disabled) ---
  ObsHooks obs_;
  Counter* cost_check_hits_ = nullptr;
  Counter* optimized_ = nullptr;
  Counter* redundant_discards_ = nullptr;
  Counter* degraded_ = nullptr;
  LogHistogram* get_plan_micros_ = nullptr;
};

}  // namespace scrpqo

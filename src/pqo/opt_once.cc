#include "pqo/opt_once.h"

namespace scrpqo {

PlanChoice OptOnce::OnInstance(const WorkloadInstance& wi,
                               EngineContext* engine) {
  PlanChoice choice;
  if (cached_ == nullptr) {
    auto result = engine->Optimize(wi);
    cached_ = std::make_shared<CachedPlan>(MakeCachedPlan(*result));
    choice.optimized = true;
  }
  choice.plan = cached_;
  return choice;
}

}  // namespace scrpqo

#include "pqo/ellipse.h"

#include "common/math_util.h"

namespace scrpqo {

PlanChoice Ellipse::OnInstance(const WorkloadInstance& wi,
                               EngineContext* engine) {
  PlanChoice choice;
  const SVector& sv = wi.svector;

  for (const auto& [plan_id, points] : points_by_plan_) {
    if (!store_.entry(plan_id).live || points.size() < 2) continue;
    for (size_t i = 0; i < points.size(); ++i) {
      for (size_t j = i + 1; j < points.size(); ++j) {
        double focal = EuclideanDistance(points[i], points[j]);
        if (focal <= 0.0) continue;
        double spread = EuclideanDistance(sv, points[i]) +
                        EuclideanDistance(sv, points[j]);
        if (spread <= 0.0 || focal / spread >= options_.delta) {
          store_.AddUsage(plan_id, 1);
          choice.plan = store_.entry(plan_id).plan;
          return choice;
        }
      }
    }
  }

  auto result = engine->Optimize(wi);
  choice.optimized = true;
  CachedPlan cached = MakeCachedPlan(*result);
  PlanStore::StoreResult stored = store_.StoreOrReuse(
      cached, sv, result->cost, options_.recost_redundancy_lambda_r, engine);
  points_by_plan_[stored.plan_id].push_back(sv);
  choice.plan = store_.entry(stored.plan_id).plan;
  return choice;
}

}  // namespace scrpqo

// Optimize-Always: optimize every instance (paper Section 1). The quality
// gold standard and the overhead worst case; caches nothing.
#pragma once

#include "pqo/technique.h"

namespace scrpqo {

/// \brief The quality gold standard: every instance gets its own optimal
/// plan at the price of one optimizer call per instance.
class OptAlways : public PqoTechnique {
 public:
  std::string name() const override { return "OptAlways"; }

  PlanChoice OnInstance(const WorkloadInstance& wi,
                        EngineContext* engine) override;

  int64_t NumPlansCached() const override { return 0; }
};

}  // namespace scrpqo

// The online-PQO technique interface (paper Section 2): techniques see the
// workload one instance at a time and must immediately return the plan to
// execute, optionally invoking the engine's optimizer or Recost APIs
// (metered by EngineContext).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "optimizer/recost.h"
#include "pqo/engine_context.h"

namespace scrpqo {

/// Observability sinks a technique may be given (both optional; null means
/// disabled and must cost no more than a pointer check on the hot path).
/// The sinks outlive the technique and are thread-safe, so AsyncScr's
/// worker may write to them concurrently with the critical path.
struct ObsHooks {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// What the technique decided for one instance.
struct PlanChoice {
  /// The plan handed to the executor. Null only when `degraded` is true
  /// AND the technique had no cached plan to fall back on (optimizer
  /// unavailable on a cold cache): callers must treat that as "cannot
  /// serve this instance" rather than dereference.
  std::shared_ptr<const CachedPlan> plan;
  /// True when the technique invoked the optimizer for this instance.
  bool optimized = false;
  /// True when the optimizer was unavailable (failure/deadline/exhausted
  /// retries) and the plan was chosen WITHOUT the lambda guarantee — the
  /// decision is traced as kDegraded and excluded from guarantee audits.
  bool degraded = false;
  /// Recost calls made inside this getPlan invocation (SCR cost check);
  /// used for per-call overhead reporting.
  int recost_calls_in_get_plan = 0;
  /// Cost-check candidates this getPlan considered (post-cap), for
  /// decision tracing.
  int cost_check_candidates_in_get_plan = 0;
};

class PqoTechnique {
 public:
  virtual ~PqoTechnique() = default;

  virtual std::string name() const = 0;

  /// Attaches decision tracing / metrics sinks. Techniques that do not
  /// emit telemetry ignore the call. Must be invoked before the first
  /// OnInstance; the sinks must outlive the technique.
  virtual void SetObs(const ObsHooks& hooks) { (void)hooks; }

  /// Processes the next instance of the workload sequence.
  virtual PlanChoice OnInstance(const WorkloadInstance& wi,
                                EngineContext* engine) = 0;

  /// Blocks until deferred background work (async manageCache) has been
  /// applied, so traces, metrics and cache-size queries are complete.
  /// No-op for synchronous techniques.
  virtual void FlushBackgroundWork() {}

  /// Number of plans currently cached.
  virtual int64_t NumPlansCached() const = 0;

  /// Peak number of plans cached over the sequence so far (the paper's
  /// numPlans metric).
  virtual int64_t PeakPlansCached() const { return NumPlansCached(); }
};

/// Factory used by the harness to create one fresh technique per sequence.
using TechniqueFactory = std::function<std::unique_ptr<PqoTechnique>()>;

}  // namespace scrpqo

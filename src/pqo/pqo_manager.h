// PqoManager: the process-level entry point a database engine would embed.
//
// The paper's plan cache is per query template (Section 2 fixes one
// template Q). A real engine serves many templates concurrently, chooses a
// per-template lambda from observed optimize/execution cost ratios
// (Section 6.2 "Choosing lambda"), and evicts plans under a shared,
// process-wide budget. PqoManager provides that serving layer:
//
//  - template_key hashes into one of N shards (N ~ hardware_concurrency,
//    overridable), each shard owning a mutex and its template -> cache map.
//    The shard lock guards only map lookup/insert/erase — never an
//    optimizer call or a cache operation — so OnInstance from M threads
//    over T templates never serializes globally.
//  - per-template caches are Scr by default or AsyncScr when
//    `use_async` is set; AsyncScr-backed templates serve concurrent
//    getPlan traffic under the technique's own shared lock, while plain
//    Scr caches are serialized per template by the template-state mutex.
//  - a process-wide budget (`global_plan_budget` plans and/or
//    `global_memory_bytes` estimated from CachedPlan footprints) is
//    enforced by cross-template LFU eviction reusing the PlanStore usage
//    counters; each eviction emits a kEvicted decision event through the
//    attached tracer and bumps "pqo_manager.global_evictions".
//  - template states are held by shared_ptr, so InvalidateTemplate can
//    drop a template while requests are in flight on it: the erased cache
//    dies when its last in-flight call returns.
//
// Metrics (when SetObs attaches a registry): "pqo_manager.shard_lock_wait"
// (micros histogram), "pqo_manager.templates" (templates ever created),
// "pqo_manager.invalidations", "pqo_manager.global_evictions",
// "pqo_manager.warmup_fallbacks".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "pqo/async_scr.h"
#include "pqo/scr.h"

namespace scrpqo {

struct PqoManagerOptions {
  /// Default bound when warm-up based selection is disabled.
  double default_lambda = 2.0;
  /// Section 6.2: optimize the first `warmup_instances` of each template
  /// with Optimize-Always and pick lambda from the ratio of optimization
  /// overhead to execution cost (proxied here by the optimizer-estimated
  /// cost of the instances).
  int warmup_instances = 0;
  /// Lambda range used by warm-up selection.
  double lambda_tight = 1.1;
  double lambda_loose = 2.0;
  /// Per-template plan budget (0 = unlimited).
  int plan_budget = 0;
  /// Passed through to each template's SCR cache.
  bool use_spatial_index = false;
  /// Back each template's cache with AsyncScr (background manageCache,
  /// shared-lock getPlan) instead of a synchronous Scr serialized per
  /// template. Required for intra-template read concurrency.
  bool use_async = false;
  /// Shard count for the template map; 0 = hardware_concurrency (min 1).
  int num_shards = 0;
  /// Process-wide cap on live plans across all templates (0 = unlimited).
  /// Enforced by cross-template LFU eviction after optimizing instances,
  /// and on FlushAll(); with AsyncScr backing, deferred manageCache work
  /// can transiently overshoot until the next enforcement point.
  int64_t global_plan_budget = 0;
  /// Process-wide cap on estimated cache heap bytes (0 = unlimited).
  int64_t global_memory_bytes = 0;
};

class PqoManager {
 public:
  explicit PqoManager(PqoManagerOptions options);

  /// Attaches decision tracing / metrics to the manager and to every
  /// current and future template cache. Attach before serving traffic; the
  /// sinks must outlive the manager.
  void SetObs(const ObsHooks& hooks) EXCLUDES(obs_mu_);

  /// Routes one instance of `template_key` (usually the normalized SQL
  /// text or QueryTemplate::name) through that template's cache.
  /// Thread-safe: callers from any number of threads may mix template
  /// keys freely.
  PlanChoice OnInstance(const std::string& template_key,
                        const WorkloadInstance& wi, EngineContext* engine)
      EXCLUDES(evict_mu_, obs_mu_);

  /// Number of templates currently tracked.
  int64_t NumTemplates() const;

  /// Plans cached across all templates.
  int64_t TotalPlansCached() const;

  /// Estimated cache heap bytes across all templates (plan trees, compiled
  /// recost programs, instance lists).
  int64_t TotalMemoryBytes() const;

  /// Drops one template's cache entirely (e.g. on schema change). Safe
  /// concurrently with OnInstance on the same key: in-flight calls finish
  /// on the detached cache.
  void InvalidateTemplate(const std::string& template_key);

  /// The effective sub-optimality bound in force for `template_key`:
  ///  - 1.0 while the template is still in warm-up (Optimize-Always serves
  ///    every instance its optimal plan, so the bound is exactly 1);
  ///  - the warm-up-selected (or default) lambda once serving from cache;
  ///  - 0.0 only for templates the manager has never seen (sentinel —
  ///    never a valid bound, since lambda >= 1 by construction).
  /// Downstream code can therefore treat any non-zero return as a sound
  /// bound on the sub-optimality of plans served so far.
  double LambdaFor(const std::string& template_key) const;

  /// Blocks until every template's deferred manageCache work is applied,
  /// then enforces the global budget once more. Call before asserting on
  /// cache sizes or auditing traces.
  void FlushAll() EXCLUDES(evict_mu_);

  /// Operator-facing status document for the admin server's /statusz:
  /// {"templates": [{key, lambda, warming_up, plans, memory_bytes},
  /// ...], "totals": {templates, plans, memory_bytes,
  /// global_plan_budget, global_memory_bytes, global_evictions,
  /// warmup_fallbacks, trace_ring_drops}}. Thread-safe.
  std::string StatuszJson() const EXCLUDES(obs_mu_);

  /// Cross-template evictions performed by the global budget enforcer.
  int64_t global_evictions() const {
    return global_evictions_.load(std::memory_order_relaxed);
  }

  /// Warm-up lambda selections that fell back to default_lambda because no
  /// instance cost was observed (see FinishWarmupLocked).
  int64_t warmup_fallbacks() const {
    return warmup_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  /// One template's serving state. `mu` guards the warm-up fields and, for
  /// sync (non-async) caches, serializes every cache operation; an
  /// AsyncScr cache handles its own locking, so post-warm-up traffic on it
  /// takes no manager lock at all.
  struct TemplateState {
    explicit TemplateState(std::string k) : key(std::move(k)) {}

    /// Immutable identity: set before the state is published into the
    /// shard map, so lock-free readers (StatuszJson) can print it without
    /// taking mu.
    const std::string key;

    mutable Mutex mu;
    bool ready GUARDED_BY(mu) = false;  // warm-up done; one cache non-null
    /// Instances routed during warm-up. A failed optimize consumes an
    /// attempt without bumping warmup_seen, so completion is attempt-based
    /// (otherwise a template whose optimizes all fail never leaves warm-up,
    /// and one whose attempts succeed partially would divide by zero).
    int warmup_attempts GUARDED_BY(mu) = 0;
    /// Warm-up optimizer calls currently running outside mu (the optimize
    /// itself is never performed under the lock — see OnInstance). The
    /// template leaves warm-up only once attempts reached the target AND
    /// every in-flight call has reported back, so no warm-up cost sample
    /// is dropped from the lambda decision.
    int warmup_inflight GUARDED_BY(mu) = 0;
    int warmup_seen GUARDED_BY(mu) = 0;
    double warmup_cost_sum GUARDED_BY(mu) = 0.0;
    double lambda GUARDED_BY(mu) = 0.0;
    /// Thread-compatible cache: every pointee operation runs under mu.
    std::unique_ptr<Scr> sync_scr GUARDED_BY(mu) PT_GUARDED_BY(mu);
    /// Internally synchronized cache: the pointer is guarded, the pointee
    /// is deliberately NOT (OnInstance snapshots the raw pointer under mu,
    /// then serves through AsyncScr's own shared lock with mu released).
    std::unique_ptr<AsyncScr> async_scr GUARDED_BY(mu);
  };
  using StatePtr = std::shared_ptr<TemplateState>;

  struct Shard {
    mutable Mutex mu;
    std::map<std::string, StatePtr> templates GUARDED_BY(mu);
  };

  /// Scoped shard hold that records the acquisition wait into
  /// "pqo_manager.shard_lock_wait" (and the ambient getPlan span). The
  /// scoped-capability shape replaces the old
  /// `std::unique_lock LockShard(...)` helper: a lock returned by value is
  /// opaque to the thread-safety analysis, a scoped acquire is not.
  class SCOPED_CAPABILITY ShardLock {
   public:
    ShardLock(const PqoManager& mgr, const Shard& shard) ACQUIRE(shard.mu);
    ~ShardLock() RELEASE();

    ShardLock(const ShardLock&) = delete;
    ShardLock& operator=(const ShardLock&) = delete;

   private:
    const Shard& shard_;
  };

  Shard& ShardFor(const std::string& key) const;
  StatePtr GetOrCreate(const std::string& key);
  /// Snapshot of every live template state (one shard locked at a time).
  std::vector<StatePtr> AllStates() const;

  /// Picks lambda from the warm-up observations and builds the cache.
  void FinishWarmupLocked(TemplateState* st) REQUIRES(st->mu);

  // Per-state accessors that take the state's own lock when the cache is a
  // sync Scr (AsyncScr locks internally).
  int64_t StatePlans(const TemplateState& st) const;
  int64_t StateMemoryBytes(const TemplateState& st) const;
  int64_t StateMinUsage(const TemplateState& st,
                        uint64_t pinned_signature) const;
  bool StateEvictOne(TemplateState* st, int instance_id,
                     uint64_t pinned_signature);

  /// Enforces global_plan_budget / global_memory_bytes by evicting the
  /// globally least-used plan until within budget. `current` (may be null)
  /// is the template that served the in-flight instance; within it the
  /// plan with `pinned_signature` is never evicted.
  void EnforceGlobalBudget(TemplateState* current, uint64_t pinned_signature,
                           int instance_id) EXCLUDES(evict_mu_);

  /// Immutable after construction; read lock-free everywhere.
  const PqoManagerOptions options_;
  /// The shard vector itself is immutable after construction (each Shard
  /// carries its own mutex for its contents).
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Serializes global-budget sweeps so concurrent optimizing threads do
  /// not race each other into over-eviction. Ordering: evict_mu_ is taken
  /// before any shard lock or TemplateState mutex (the sweep walks every
  /// shard), never the other way around. The shard/state edges of that
  /// order cross class boundaries and are documented in DESIGN.md §4g;
  /// the evict_mu_ → obs_mu_ edge is expressible here and checked by
  /// -Wthread-safety-beta.
  Mutex evict_mu_ ACQUIRED_BEFORE(obs_mu_);

  std::atomic<int64_t> global_evictions_{0};
  std::atomic<int64_t> warmup_fallbacks_{0};

  // --- observability (null = disabled) ---
  // The hooks struct is guarded by obs_mu_ (copied when creating caches);
  // the cached sink pointers are atomics so hot-path reads stay lock-free
  // even if SetObs is re-attached between traffic windows. obs_mu_ is a
  // leaf lock: nothing else is ever acquired while it is held
  // (FinishWarmupLocked takes it *under* a TemplateState mutex, so the
  // documented order is st->mu before obs_mu_).
  mutable Mutex obs_mu_;
  ObsHooks obs_ GUARDED_BY(obs_mu_);
  /// True when a tracer is attached, so OnInstance knows whether to open a
  /// getPlan span without taking obs_mu_ on the hot path.
  std::atomic<bool> span_enabled_{false};
  std::atomic<LogHistogram*> shard_lock_wait_{nullptr};
  std::atomic<Counter*> templates_created_{nullptr};
  std::atomic<Counter*> invalidations_{nullptr};
  std::atomic<Counter*> global_evictions_counter_{nullptr};
  std::atomic<Counter*> warmup_fallbacks_counter_{nullptr};
  /// "pqo.degraded_decisions": manager-level degraded servings (warm-up
  /// optimize retries exhausted). Techniques bump the same counter for
  /// their own degraded paths.
  std::atomic<Counter*> degraded_counter_{nullptr};
};

}  // namespace scrpqo

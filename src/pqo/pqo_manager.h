// PqoManager: the process-level entry point a database engine would embed.
//
// The paper's plan cache is per query template (Section 2 fixes one
// template Q). A real engine serves many templates concurrently, chooses a
// per-template lambda from observed optimize/execution cost ratios
// (Section 6.2 "Choosing lambda"), and evicts whole template caches under
// memory pressure. PqoManager provides that wrapper: it keys SCR instances
// by template identity, runs the lambda-selection warm-up, and exposes
// aggregate statistics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "pqo/scr.h"

namespace scrpqo {

struct PqoManagerOptions {
  /// Default bound when warm-up based selection is disabled.
  double default_lambda = 2.0;
  /// Section 6.2: optimize the first `warmup_instances` of each template
  /// with Optimize-Always and pick lambda from the ratio of optimization
  /// overhead to execution cost (proxied here by the optimizer-estimated
  /// cost of the instances).
  int warmup_instances = 0;
  /// Lambda range used by warm-up selection.
  double lambda_tight = 1.1;
  double lambda_loose = 2.0;
  /// Per-template plan budget (0 = unlimited).
  int plan_budget = 0;
  /// Passed through to each template's SCR cache.
  bool use_spatial_index = false;
};

class PqoManager {
 public:
  explicit PqoManager(PqoManagerOptions options) : options_(options) {}

  /// Routes one instance of `template_key` (usually the normalized SQL
  /// text or QueryTemplate::name) through that template's cache.
  PlanChoice OnInstance(const std::string& template_key,
                        const WorkloadInstance& wi, EngineContext* engine);

  /// Number of templates currently tracked.
  int64_t NumTemplates() const {
    return static_cast<int64_t>(caches_.size());
  }

  /// Plans cached across all templates.
  int64_t TotalPlansCached() const;

  /// Drops one template's cache entirely (e.g. on schema change).
  void InvalidateTemplate(const std::string& template_key);

  /// The lambda a template's cache ended up using (0 if unknown template).
  double LambdaFor(const std::string& template_key) const;

 private:
  struct TemplateCache {
    std::unique_ptr<Scr> scr;
    int warmup_seen = 0;
    double warmup_cost_sum = 0.0;
    double lambda = 0.0;
  };

  void FinishWarmup(TemplateCache* cache);

  PqoManagerOptions options_;
  std::map<std::string, TemplateCache> caches_;
};

}  // namespace scrpqo

#include "pqo/density.h"

#include <map>

#include "common/math_util.h"

namespace scrpqo {

PlanChoice Density::OnInstance(const WorkloadInstance& wi,
                               EngineContext* engine) {
  PlanChoice choice;
  const SVector& sv = wi.svector;

  // Vote among stored points inside the neighborhood.
  std::map<int, int> votes;
  int total = 0;
  for (const Point& p : points_) {
    if (!store_.entry(p.plan_id).live) continue;
    if (EuclideanDistance(sv, p.sv) <= options_.radius) {
      ++votes[p.plan_id];
      ++total;
    }
  }
  if (total >= options_.min_neighbors) {
    int best_plan = -1;
    int best_votes = 0;
    for (const auto& [plan_id, count] : votes) {
      if (count > best_votes) {
        best_votes = count;
        best_plan = plan_id;
      }
    }
    if (best_plan >= 0 &&
        static_cast<double>(best_votes) / static_cast<double>(total) >=
            options_.confidence) {
      store_.AddUsage(best_plan, 1);
      choice.plan = store_.entry(best_plan).plan;
      return choice;
    }
  }

  auto result = engine->Optimize(wi);
  choice.optimized = true;
  CachedPlan cached = MakeCachedPlan(*result);
  PlanStore::StoreResult stored = store_.StoreOrReuse(
      cached, sv, result->cost, options_.recost_redundancy_lambda_r, engine);
  points_.push_back(Point{sv, stored.plan_id});
  choice.plan = store_.entry(stored.plan_id).plan;
  return choice;
}

}  // namespace scrpqo

// Ranges (Oracle 11g adaptive cursor sharing, Lee & Zait, PVLDB 2008, as
// modelled in the paper): each stored plan keeps the minimum bounding
// rectangle of the selectivity vectors it was optimal for, expanded by a
// small margin; a new instance falling inside a rectangle reuses that plan
// (paper Table 1). No sub-optimality guarantee.
#pragma once

#include <memory>
#include <sstream>
#include <vector>

#include "pqo/plan_store.h"
#include "pqo/technique.h"

namespace scrpqo {

struct RangesOptions {
  /// Expansion of each MBR side ("near selectivity range" 0.01).
  double margin = 0.01;
  /// Appendix H.6 variant: Recost redundancy check on store when >= 1.
  double recost_redundancy_lambda_r = -1.0;
};

class Ranges : public PqoTechnique {
 public:
  explicit Ranges(RangesOptions options) : options_(options) {}

  std::string name() const override {
    std::ostringstream os;
    os << "Ranges(" << options_.margin << ")";
    if (options_.recost_redundancy_lambda_r >= 1.0) os << "+R";
    return os.str();
  }

  PlanChoice OnInstance(const WorkloadInstance& wi,
                        EngineContext* engine) override;

  int64_t NumPlansCached() const override { return store_.NumLive(); }
  int64_t PeakPlansCached() const override { return store_.Peak(); }

 private:
  struct Box {
    int plan_id = -1;
    SVector lo, hi;

    bool Contains(const SVector& sv, double margin) const;
    double Volume(double margin) const;
    void Extend(const SVector& sv);
  };

  RangesOptions options_;
  PlanStore store_;
  std::vector<Box> boxes_;
};

}  // namespace scrpqo

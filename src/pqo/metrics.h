// Evaluation metrics for one workload sequence (paper Section 2.1):
// per-instance sub-optimality SO, worst case MSO, aggregate TotalCostRatio,
// optimizer-call fraction numOpt and peak plan-cache size numPlans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace scrpqo {

struct SequenceMetrics {
  std::string technique;
  std::string template_name;
  std::string ordering;
  int64_t m = 0;  // sequence length

  std::vector<double> so_per_instance;
  double mso = 1.0;
  double total_cost_ratio = 1.0;
  /// Instances whose SO exceeded the configured bound (BCG/PCM violation
  /// fallout, Section 7.2). Only meaningful for bounded techniques.
  int64_t bound_violations = 0;

  int64_t num_opt = 0;
  double NumOptPercent() const {
    return m == 0 ? 0.0
                  : 100.0 * static_cast<double>(num_opt) /
                        static_cast<double>(m);
  }

  int64_t num_plans = 0;  // peak plans cached
  int64_t num_recost_calls = 0;
  int max_recost_per_get_plan = 0;

  /// Wall-clock spent inside technique decision making + charged engine
  /// calls, for overhead reporting.
  double technique_seconds = 0.0;

  /// Sums used for TotalCostRatio.
  double total_chosen_cost = 0.0;
  double total_optimal_cost = 0.0;

  /// Pointer-free export of the run's MetricsRegistry (empty unless a
  /// registry was attached via RunSequenceOptions::metrics): decision
  /// counters plus latency histograms with p50/p90/p99.
  RegistrySnapshot obs;
};

}  // namespace scrpqo

#include "pqo/instance_index.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/status.h"

namespace scrpqo {

InstanceKdTree::InstanceKdTree(int dimensions) : dimensions_(dimensions) {
  SCRPQO_CHECK(dimensions >= 1, "k-d tree needs at least one dimension");
}

std::vector<double> InstanceKdTree::ToLogPoint(const SVector& sv) const {
  SCRPQO_CHECK(static_cast<int>(sv.size()) == dimensions_,
               "selectivity vector dimensionality mismatch");
  std::vector<double> p(sv.size());
  for (size_t i = 0; i < sv.size(); ++i) {
    p[i] = std::log(std::max(sv[i], kSelectivityFloor));
  }
  return p;
}

const double* InstanceKdTree::ToLogPointArena(const SVector& sv) const {
  SCRPQO_CHECK(static_cast<int>(sv.size()) == dimensions_,
               "selectivity vector dimensionality mismatch");
  // No Scope here: the point must stay valid while the caller's output
  // ArenaVec grows, so it lives in the caller's (required) enclosing
  // Scope. Bounded: d doubles per query.
  double* p = ScratchArena::Tls().AllocateArray<double>(sv.size());
  for (size_t i = 0; i < sv.size(); ++i) {
    p[i] = std::log(std::max(sv[i], kSelectivityFloor));
  }
  return p;
}

void InstanceKdTree::Insert(int64_t id, const SVector& sv) {
  std::vector<double> point = ToLogPoint(sv);
  std::unique_ptr<Node>* slot = &root_;
  int depth = 0;
  while (*slot != nullptr) {
    int dim = (*slot)->split_dim;
    bool go_left = point[static_cast<size_t>(dim)] <
                   (*slot)->point[static_cast<size_t>(dim)];
    slot = go_left ? &(*slot)->left : &(*slot)->right;
    ++depth;
  }
  auto node = std::make_unique<Node>();
  node->id = id;
  node->point = std::move(point);
  node->split_dim = depth % dimensions_;
  *slot = std::move(node);
  ++live_count_;
}

void InstanceKdTree::Remove(int64_t id) {
  // Lazy deletion: walk the whole tree (removals are rare — budget
  // evictions only).
  std::vector<Node*> stack;
  if (root_) stack.push_back(root_.get());
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (n->id == id && n->live) {
      n->live = false;
      --live_count_;
      return;
    }
    if (n->left) stack.push_back(n->left.get());
    if (n->right) stack.push_back(n->right.get());
  }
}

std::vector<InstanceKdTree::Match> InstanceKdTree::RangeQuery(
    const SVector& sv, double gl_bound) const {
  std::vector<Match> out;
  // The output is heap-backed, so this wrapper owns the arena Scope that
  // the Into form requires from its caller.
  ScratchArena::Scope scope(ScratchArena::Tls());
  RangeQueryInto(sv, gl_bound, &out);
  return out;
}

std::vector<InstanceKdTree::Match> InstanceKdTree::NearestByGl(
    const SVector& sv, int k) const {
  std::vector<Match> out;
  ScratchArena::Scope scope(ScratchArena::Tls());
  NearestByGlInto(sv, k, &out);
  return out;
}

}  // namespace scrpqo

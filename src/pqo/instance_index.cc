#include "pqo/instance_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace scrpqo {

namespace {
constexpr double kSelFloor = 1e-9;
}  // namespace

InstanceKdTree::InstanceKdTree(int dimensions) : dimensions_(dimensions) {
  SCRPQO_CHECK(dimensions >= 1, "k-d tree needs at least one dimension");
}

std::vector<double> InstanceKdTree::ToLogPoint(const SVector& sv) const {
  SCRPQO_CHECK(static_cast<int>(sv.size()) == dimensions_,
               "selectivity vector dimensionality mismatch");
  std::vector<double> p(sv.size());
  for (size_t i = 0; i < sv.size(); ++i) {
    p[i] = std::log(std::max(sv[i], kSelFloor));
  }
  return p;
}

void InstanceKdTree::Insert(int64_t id, const SVector& sv) {
  std::vector<double> point = ToLogPoint(sv);
  std::unique_ptr<Node>* slot = &root_;
  int depth = 0;
  while (*slot != nullptr) {
    int dim = (*slot)->split_dim;
    bool go_left = point[static_cast<size_t>(dim)] <
                   (*slot)->point[static_cast<size_t>(dim)];
    slot = go_left ? &(*slot)->left : &(*slot)->right;
    ++depth;
  }
  auto node = std::make_unique<Node>();
  node->id = id;
  node->point = std::move(point);
  node->split_dim = depth % dimensions_;
  *slot = std::move(node);
  ++live_count_;
}

void InstanceKdTree::Remove(int64_t id) {
  // Lazy deletion: walk the whole tree (removals are rare — budget
  // evictions only).
  std::vector<Node*> stack;
  if (root_) stack.push_back(root_.get());
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (n->id == id && n->live) {
      n->live = false;
      --live_count_;
      return;
    }
    if (n->left) stack.push_back(n->left.get());
    if (n->right) stack.push_back(n->right.get());
  }
}

void InstanceKdTree::RangeRec(const Node* node, const std::vector<double>& q,
                              double bound, std::vector<Match>* out,
                              int64_t* visited) const {
  if (node == nullptr) return;
  ++*visited;
  double dist = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    dist += std::fabs(q[i] - node->point[i]);
    if (dist > bound) break;
  }
  if (node->live && dist <= bound) {
    out->push_back(Match{node->id, dist});
  }
  int dim = node->split_dim;
  double delta = q[static_cast<size_t>(dim)] -
                 node->point[static_cast<size_t>(dim)];
  // The near side always; the far side only if the splitting plane is
  // within `bound` (L1 balls project to intervals per axis).
  const Node* near = delta < 0 ? node->left.get() : node->right.get();
  const Node* far = delta < 0 ? node->right.get() : node->left.get();
  RangeRec(near, q, bound, out, visited);
  if (std::fabs(delta) <= bound) RangeRec(far, q, bound, out, visited);
}

std::vector<InstanceKdTree::Match> InstanceKdTree::RangeQuery(
    const SVector& sv, double gl_bound) const {
  std::vector<Match> out;
  int64_t visited = 0;
  if (gl_bound >= 1.0) {
    RangeRec(root_.get(), ToLogPoint(sv), std::log(gl_bound), &out,
             &visited);
  }
  nodes_visited_.Store(visited);
  return out;
}

void InstanceKdTree::NearestRec(const Node* node,
                                const std::vector<double>& q, int k,
                                std::vector<Match>* heap,
                                int64_t* visited) const {
  if (node == nullptr) return;
  ++*visited;
  double dist = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    dist += std::fabs(q[i] - node->point[i]);
  }
  auto worst = [&heap]() {
    return heap->empty() ? std::numeric_limits<double>::infinity()
                         : heap->front().log_gl;
  };
  auto cmp = [](const Match& a, const Match& b) {
    return a.log_gl < b.log_gl;  // max-heap on distance
  };
  if (node->live &&
      (static_cast<int>(heap->size()) < k || dist < worst())) {
    heap->push_back(Match{node->id, dist});
    std::push_heap(heap->begin(), heap->end(), cmp);
    if (static_cast<int>(heap->size()) > k) {
      std::pop_heap(heap->begin(), heap->end(), cmp);
      heap->pop_back();
    }
  }
  int dim = node->split_dim;
  double delta = q[static_cast<size_t>(dim)] -
                 node->point[static_cast<size_t>(dim)];
  const Node* near = delta < 0 ? node->left.get() : node->right.get();
  const Node* far = delta < 0 ? node->right.get() : node->left.get();
  NearestRec(near, q, k, heap, visited);
  if (static_cast<int>(heap->size()) < k || std::fabs(delta) < worst()) {
    NearestRec(far, q, k, heap, visited);
  }
}

std::vector<InstanceKdTree::Match> InstanceKdTree::NearestByGl(
    const SVector& sv, int k) const {
  std::vector<Match> heap;
  if (k <= 0) {
    nodes_visited_.Store(0);
    return heap;
  }
  int64_t visited = 0;
  NearestRec(root_.get(), ToLogPoint(sv), k, &heap, &visited);
  nodes_visited_.Store(visited);
  std::sort(heap.begin(), heap.end(),
            [](const Match& a, const Match& b) {
              return a.log_gl < b.log_gl;
            });
  return heap;
}

}  // namespace scrpqo

#include "pqo/cache_persistence.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "optimizer/plan_serde.h"

namespace scrpqo {

namespace {
constexpr char kHeader[] = "scrpqo-cache-v1";

/// Parses and validates one `I ...` instance record (without the leading
/// "I " tag). Every numeric field is range-checked — the snapshot is
/// external input that may be truncated, bit-flipped or hostile, so
/// nothing unvalidated may reach e.v.resize() or the cache (the trace
/// serde applies the same finite-values policy).
Status ParseInstanceLine(const std::string& body, Scr::SnapshotEntry* e) {
  std::istringstream ls(body);
  int disabled = 0;
  int64_t d = 0;
  if (!(ls >> e->plan_ordinal >> e->opt_cost >> e->subopt >> e->usage >>
        disabled >> d)) {
    return Status::InvalidArgument("malformed instance entry: " + body);
  }
  if (e->plan_ordinal < 0) {
    return Status::InvalidArgument("instance entry has negative plan ordinal");
  }
  if (!std::isfinite(e->opt_cost) || e->opt_cost <= 0.0) {
    return Status::InvalidArgument("instance entry has bad opt_cost");
  }
  if (!std::isfinite(e->subopt) || e->subopt < 1.0) {
    return Status::InvalidArgument("instance entry has bad subopt");
  }
  if (e->usage < 0) {
    return Status::InvalidArgument("instance entry has negative usage");
  }
  // Bound the dimension before the resize: a corrupt count here would
  // otherwise trigger a multi-GB allocation or bad_alloc. Templates have
  // one dimension per parameterized predicate, so the cap is generous.
  if (d < 0 || d > kMaxSnapshotDims) {
    return Status::InvalidArgument("instance entry has bad dimension count");
  }
  e->cost_check_disabled = disabled != 0;
  e->v.resize(static_cast<size_t>(d));
  for (int64_t i = 0; i < d; ++i) {
    if (!(ls >> e->v[static_cast<size_t>(i)])) {
      return Status::InvalidArgument("truncated selectivity vector");
    }
    double s = e->v[static_cast<size_t>(i)];
    if (!std::isfinite(s) || s <= 0.0 || s > 1.0) {
      return Status::InvalidArgument("selectivity out of (0, 1]");
    }
  }
  return Status::OK();
}

/// Chaos hooks for restore-path testing: with the snapshot.truncate /
/// snapshot.bitflip points armed, the loaded bytes are deterministically
/// corrupted before parsing — exercising exactly what a crash mid-write
/// or storage rot would produce.
void ApplySnapshotFaults(std::string* bytes) {
  if (bytes->empty()) return;
  double fraction = 0.0;
  if (FaultShouldFire(faults::kSnapshotTruncate, &fraction)) {
    if (!(fraction > 0.0 && fraction < 1.0)) fraction = 0.5;
    bytes->resize(static_cast<size_t>(
        static_cast<double>(bytes->size()) * fraction));
  }
  double pos = 0.0;
  if (FaultShouldFire(faults::kSnapshotBitFlip, &pos)) {
    size_t at = pos > 0.0 ? static_cast<size_t>(pos) % bytes->size()
                          : bytes->size() / 2;
    (*bytes)[at] = static_cast<char>((*bytes)[at] ^ 0x10);
  }
}

}  // namespace

std::string SaveScrCache(const Scr& scr) {
  std::ostringstream os;
  os << kHeader << "\n";
  for (const auto& plan : scr.SnapshotPlans()) {
    os << "P " << SerializePlan(*plan) << "\n";
  }
  for (const auto& e : scr.SnapshotInstances()) {
    os << "I " << e.plan_ordinal << " ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g %.17g", e.opt_cost, e.subopt);
    os << buf << " " << e.usage << " " << (e.cost_check_disabled ? 1 : 0)
       << " " << e.v.size();
    for (double s : e.v) {
      std::snprintf(buf, sizeof(buf), " %.17g", s);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

Status ParseScrCacheSnapshot(const std::string& snapshot,
                             std::vector<PlanPtr>* plans,
                             std::vector<Scr::SnapshotEntry>* entries) {
  std::istringstream is(snapshot);
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    return Status::InvalidArgument("bad cache snapshot header");
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == 'P') {
      Result<PlanPtr> plan = DeserializePlan(line.substr(2));
      if (!plan.ok()) return plan.status();
      plans->push_back(plan.MoveValueOrDie());
    } else if (line[0] == 'I') {
      Scr::SnapshotEntry e;
      SCRPQO_RETURN_NOT_OK(ParseInstanceLine(line.substr(2), &e));
      entries->push_back(std::move(e));
    } else {
      return Status::InvalidArgument("unknown snapshot record: " + line);
    }
  }
  return Status::OK();
}

Status ParseScrCacheSnapshotLenient(const std::string& snapshot,
                                    std::vector<PlanPtr>* plans,
                                    std::vector<Scr::SnapshotEntry>* entries,
                                    SnapshotRestoreReport* report) {
  *report = SnapshotRestoreReport{};
  std::istringstream is(snapshot);
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    return Status::InvalidArgument("bad cache snapshot header");
  }
  // Corruption model: a crash mid-write (or a fault-injected truncation /
  // bit flip) damages a suffix or a single record. Records before the
  // first bad line are intact and internally validated, so the valid
  // prefix is kept; everything from the first failure on is dropped —
  // later records may reference plans we cannot trust to have parsed.
  bool corrupt = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (corrupt) {
      ++report->records_dropped;
      continue;
    }
    Status st = Status::OK();
    if (line[0] == 'P') {
      Result<PlanPtr> plan = DeserializePlan(line.substr(2));
      if (plan.ok()) {
        plans->push_back(plan.MoveValueOrDie());
        ++report->plans_restored;
      } else {
        st = plan.status();
      }
    } else if (line[0] == 'I') {
      Scr::SnapshotEntry e;
      st = ParseInstanceLine(line.substr(2), &e);
      if (st.ok()) {
        if (e.plan_ordinal < report->plans_restored) {
          entries->push_back(std::move(e));
          ++report->entries_restored;
        } else {
          st = Status::InvalidArgument(
              "instance entry references unparsed plan");
        }
      }
    } else {
      st = Status::InvalidArgument("unknown snapshot record: " + line);
    }
    if (!st.ok()) {
      corrupt = true;
      ++report->records_dropped;
      report->first_error = st.ToString();
    }
  }
  // A snapshot that ends without a trailing newline mid-record shows up
  // as a short final line, caught above; a fully empty tail is fine.
  return Status::OK();
}

Status LoadScrCache(const std::string& snapshot, Scr* scr) {
  std::vector<PlanPtr> plans;
  std::vector<Scr::SnapshotEntry> entries;
  SCRPQO_RETURN_NOT_OK(ParseScrCacheSnapshot(snapshot, &plans, &entries));
  return scr->Restore(plans, entries);
}

Status LoadScrCacheLenient(const std::string& snapshot, Scr* scr,
                           SnapshotRestoreReport* report) {
  std::vector<PlanPtr> plans;
  std::vector<Scr::SnapshotEntry> entries;
  SCRPQO_RETURN_NOT_OK(
      ParseScrCacheSnapshotLenient(snapshot, &plans, &entries, report));
  return scr->Restore(plans, entries);
}

Status SaveScrCacheToFile(const Scr& scr, const std::string& path) {
  // Write-to-temp + atomic rename: a crash mid-save leaves either the old
  // snapshot or no snapshot, never a truncated file that half-loads on
  // restart. The temp file lives next to the target so the rename cannot
  // cross filesystems.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f.is_open()) {
      return Status::Internal("cannot open cache file for writing: " + tmp);
    }
    f << SaveScrCache(scr);
    f.flush();
    if (!f.good()) {
      f.close();
      std::remove(tmp.c_str());
      return Status::Internal("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

namespace {

Status SlurpSnapshotFile(const std::string& path, std::string* bytes) {
  std::ifstream f(path);
  if (!f.is_open()) {
    return Status::NotFound("cache file not found: " + path);
  }
  std::stringstream buf;
  buf << f.rdbuf();
  *bytes = buf.str();
  ApplySnapshotFaults(bytes);
  return Status::OK();
}

}  // namespace

Status LoadScrCacheFromFile(const std::string& path, Scr* scr) {
  std::string bytes;
  SCRPQO_RETURN_NOT_OK(SlurpSnapshotFile(path, &bytes));
  return LoadScrCache(bytes, scr);
}

Status LoadScrCacheFromFileLenient(const std::string& path, Scr* scr,
                                   SnapshotRestoreReport* report) {
  std::string bytes;
  SCRPQO_RETURN_NOT_OK(SlurpSnapshotFile(path, &bytes));
  return LoadScrCacheLenient(bytes, scr, report);
}

}  // namespace scrpqo

#include "pqo/cache_persistence.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "optimizer/plan_serde.h"

namespace scrpqo {

namespace {
constexpr char kHeader[] = "scrpqo-cache-v1";
}  // namespace

std::string SaveScrCache(const Scr& scr) {
  std::ostringstream os;
  os << kHeader << "\n";
  for (const auto& plan : scr.SnapshotPlans()) {
    os << "P " << SerializePlan(*plan) << "\n";
  }
  for (const auto& e : scr.SnapshotInstances()) {
    os << "I " << e.plan_ordinal << " ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g %.17g", e.opt_cost, e.subopt);
    os << buf << " " << e.usage << " " << (e.cost_check_disabled ? 1 : 0)
       << " " << e.v.size();
    for (double s : e.v) {
      std::snprintf(buf, sizeof(buf), " %.17g", s);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

Status ParseScrCacheSnapshot(const std::string& snapshot,
                             std::vector<PlanPtr>* plans,
                             std::vector<Scr::SnapshotEntry>* entries) {
  std::istringstream is(snapshot);
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    return Status::InvalidArgument("bad cache snapshot header");
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == 'P') {
      Result<PlanPtr> plan = DeserializePlan(line.substr(2));
      if (!plan.ok()) return plan.status();
      plans->push_back(plan.MoveValueOrDie());
    } else if (line[0] == 'I') {
      std::istringstream ls(line.substr(2));
      Scr::SnapshotEntry e;
      int disabled = 0;
      size_t d = 0;
      if (!(ls >> e.plan_ordinal >> e.opt_cost >> e.subopt >> e.usage >>
            disabled >> d)) {
        return Status::InvalidArgument("malformed instance entry: " + line);
      }
      e.cost_check_disabled = disabled != 0;
      e.v.resize(d);
      for (size_t i = 0; i < d; ++i) {
        if (!(ls >> e.v[i])) {
          return Status::InvalidArgument("truncated selectivity vector");
        }
      }
      entries->push_back(std::move(e));
    } else {
      return Status::InvalidArgument("unknown snapshot record: " + line);
    }
  }
  return Status::OK();
}

Status LoadScrCache(const std::string& snapshot, Scr* scr) {
  std::vector<PlanPtr> plans;
  std::vector<Scr::SnapshotEntry> entries;
  SCRPQO_RETURN_NOT_OK(ParseScrCacheSnapshot(snapshot, &plans, &entries));
  return scr->Restore(plans, entries);
}

Status SaveScrCacheToFile(const Scr& scr, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::Internal("cannot open cache file for writing: " + path);
  }
  f << SaveScrCache(scr);
  return f.good() ? Status::OK() : Status::Internal("write failed: " + path);
}

Status LoadScrCacheFromFile(const std::string& path, Scr* scr) {
  std::ifstream f(path);
  if (!f.is_open()) {
    return Status::NotFound("cache file not found: " + path);
  }
  std::stringstream buf;
  buf << f.rdbuf();
  return LoadScrCache(buf.str(), scr);
}

}  // namespace scrpqo

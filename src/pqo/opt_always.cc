#include "pqo/opt_always.h"

namespace scrpqo {

PlanChoice OptAlways::OnInstance(const WorkloadInstance& wi,
                                 EngineContext* engine) {
  auto result = engine->Optimize(wi);
  PlanChoice choice;
  choice.plan = std::make_shared<CachedPlan>(MakeCachedPlan(*result));
  choice.optimized = true;
  return choice;
}

}  // namespace scrpqo

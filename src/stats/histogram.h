// Equi-depth histograms: the selectivity-estimation substrate the paper's
// sVector API (Appendix B) relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/predicate.h"
#include "expr/value.h"

namespace scrpqo {

/// \brief Equi-depth (equi-height) histogram over the numeric view of a
/// column, with per-bucket distinct counts.
///
/// Estimation assumes uniform spread within a bucket — the standard model in
/// commercial optimizers. `QuantileForSelectivity` inverts the estimate: it
/// returns a predicate constant whose estimated selectivity is (close to) a
/// requested target, which is how the workload generator hits chosen points
/// in the selectivity space (paper Section 7.1).
class EquiDepthHistogram {
 public:
  EquiDepthHistogram() = default;

  /// Builds a histogram with at most `num_buckets` buckets from raw values
  /// (taken by value; sorted internally).
  static EquiDepthHistogram Build(std::vector<double> values,
                                  int num_buckets);

  /// Estimated fraction of rows satisfying `col op constant`, in [0, 1].
  double EstimateSelectivity(CompareOp op, double constant) const;

  /// Returns a constant c such that EstimateSelectivity(op, c) ~= target.
  /// Only meaningful for inequality operators. `target` is clamped to
  /// [0, 1].
  double QuantileForSelectivity(CompareOp op, double target) const;

  int64_t row_count() const { return row_count_; }
  int64_t distinct_count() const { return distinct_total_; }
  double min_value() const { return min_; }
  double max_value() const { return max_; }
  size_t num_buckets() const { return upper_bounds_.size(); }
  bool empty() const { return row_count_ == 0; }

  std::string ToString() const;

 private:
  /// Fraction of rows with value <= c (the CDF); all operators derive from
  /// this plus the equality estimate.
  double CdfLe(double c) const;
  /// Estimated fraction of rows with value == c.
  double EstimateEq(double c) const;

  // Bucket i covers (lower_i, upper_bounds_[i]] where lower_i is the
  // previous bucket's upper bound (min_ for bucket 0, inclusive).
  std::vector<double> upper_bounds_;
  std::vector<int64_t> counts_;
  std::vector<int64_t> distincts_;
  int64_t row_count_ = 0;
  int64_t distinct_total_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Summary statistics for one column, owned by the catalog.
struct ColumnStats {
  int64_t row_count = 0;
  int64_t distinct_count = 0;
  double min_value = 0.0;
  double max_value = 0.0;
  EquiDepthHistogram histogram;

  /// Selectivity of `op constant` against this column.
  double Selectivity(CompareOp op, const Value& constant) const {
    if (row_count == 0) return 0.0;
    return histogram.EstimateSelectivity(op, constant.AsDouble());
  }
};

}  // namespace scrpqo

#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/status.h"

namespace scrpqo {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<double> values,
                                             int num_buckets) {
  EquiDepthHistogram h;
  if (values.empty()) return h;
  SCRPQO_CHECK(num_buckets > 0, "num_buckets must be positive");
  std::sort(values.begin(), values.end());
  h.row_count_ = static_cast<int64_t>(values.size());
  h.min_ = values.front();
  h.max_ = values.back();

  int64_t n = h.row_count_;
  int buckets = static_cast<int>(
      std::min<int64_t>(num_buckets, n));
  int64_t target_depth = (n + buckets - 1) / buckets;

  size_t i = 0;
  while (i < values.size()) {
    size_t end = std::min(values.size(), i + static_cast<size_t>(target_depth));
    // Extend the bucket so equal values never straddle a boundary; this keeps
    // the CDF well-defined at bucket edges.
    while (end < values.size() && values[end] == values[end - 1]) ++end;
    double ub = values[end - 1];
    int64_t count = static_cast<int64_t>(end - i);
    int64_t distinct = 1;
    for (size_t j = i + 1; j < end; ++j) {
      if (values[j] != values[j - 1]) ++distinct;
    }
    h.upper_bounds_.push_back(ub);
    h.counts_.push_back(count);
    h.distincts_.push_back(distinct);
    h.distinct_total_ += distinct;
    i = end;
  }
  return h;
}

double EquiDepthHistogram::CdfLe(double c) const {
  if (empty()) return 0.0;
  if (c < min_) return 0.0;
  if (c >= max_) return 1.0;
  double cum = 0.0;
  double lower = min_;
  for (size_t b = 0; b < upper_bounds_.size(); ++b) {
    double upper = upper_bounds_[b];
    double bucket_rows = static_cast<double>(counts_[b]);
    if (c >= upper) {
      cum += bucket_rows;
      lower = upper;
      continue;
    }
    // c falls inside bucket b: interpolate uniformly.
    double width = upper - lower;
    double frac = width <= 0.0 ? 1.0 : (c - lower) / width;
    frac = std::clamp(frac, 0.0, 1.0);
    cum += bucket_rows * frac;
    break;
  }
  return cum / static_cast<double>(row_count_);
}

double EquiDepthHistogram::EstimateEq(double c) const {
  if (empty() || c < min_ || c > max_) return 0.0;
  double lower = min_;
  for (size_t b = 0; b < upper_bounds_.size(); ++b) {
    double upper = upper_bounds_[b];
    if (c <= upper) {
      double bucket_frac =
          static_cast<double>(counts_[b]) / static_cast<double>(row_count_);
      double d = static_cast<double>(std::max<int64_t>(distincts_[b], 1));
      return bucket_frac / d;
    }
    lower = upper;
  }
  (void)lower;
  return 0.0;
}

double EquiDepthHistogram::EstimateSelectivity(CompareOp op,
                                               double c) const {
  if (empty()) return 0.0;
  switch (op) {
    case CompareOp::kLe:
      return CdfLe(c);
    case CompareOp::kLt:
      return std::max(0.0, CdfLe(c) - EstimateEq(c));
    case CompareOp::kGt:
      return std::max(0.0, 1.0 - CdfLe(c));
    case CompareOp::kGe:
      return std::min(1.0, 1.0 - CdfLe(c) + EstimateEq(c));
    case CompareOp::kEq:
      return EstimateEq(c);
  }
  return 0.0;
}

double EquiDepthHistogram::QuantileForSelectivity(CompareOp op,
                                                  double target) const {
  SCRPQO_CHECK(op != CompareOp::kEq,
               "QuantileForSelectivity requires a range operator");
  if (empty()) return 0.0;
  target = std::clamp(target, 0.0, 1.0);
  // For > / >= predicates a target selectivity t corresponds to the
  // (1 - t) quantile of the CDF.
  double cdf_target =
      (op == CompareOp::kGt || op == CompareOp::kGe) ? 1.0 - target : target;

  if (cdf_target <= 0.0) return min_ - 1.0;
  if (cdf_target >= 1.0) return max_;

  double cum = 0.0;
  double lower = min_;
  double total = static_cast<double>(row_count_);
  for (size_t b = 0; b < upper_bounds_.size(); ++b) {
    double upper = upper_bounds_[b];
    double bucket_rows = static_cast<double>(counts_[b]);
    double next_cum = cum + bucket_rows;
    if (next_cum / total >= cdf_target) {
      double need = cdf_target * total - cum;
      double frac = bucket_rows <= 0.0 ? 0.0 : need / bucket_rows;
      return lower + (upper - lower) * frac;
    }
    cum = next_cum;
    lower = upper;
  }
  return max_;
}

std::string EquiDepthHistogram::ToString() const {
  std::ostringstream os;
  os << "EquiDepthHistogram(rows=" << row_count_
     << ", distinct=" << distinct_total_ << ", buckets="
     << upper_bounds_.size() << ", range=[" << min_ << ", " << max_ << "])";
  return os.str();
}

}  // namespace scrpqo

#include "catalog/catalog.h"

namespace scrpqo {

int TableDef::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column) return static_cast<int>(i);
  }
  return -1;
}

const IndexDef* TableDef::FindIndexOn(const std::string& column) const {
  for (const auto& idx : indexes) {
    if (idx.column == column) return &idx;
  }
  return nullptr;
}

Status Catalog::AddTable(TableDef def) {
  if (tables_.count(def.name) > 0) {
    return Status::AlreadyExists("table " + def.name + " already exists");
  }
  for (const auto& idx : def.indexes) {
    if (!def.HasColumn(idx.column)) {
      return Status::InvalidArgument("index " + idx.name +
                                     " references unknown column " +
                                     idx.column);
    }
  }
  tables_.emplace(def.name, std::move(def));
  return Status::OK();
}

const TableDef* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const TableDef& Catalog::GetTable(const std::string& name) const {
  const TableDef* t = FindTable(name);
  SCRPQO_CHECK(t != nullptr, "unknown table: " + name);
  return *t;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

void Catalog::SetColumnStats(const std::string& table,
                             const std::string& column, ColumnStats stats) {
  column_stats_[table + "." + column] = std::move(stats);
}

const ColumnStats* Catalog::FindColumnStats(const std::string& table,
                                            const std::string& column) const {
  auto it = column_stats_.find(table + "." + column);
  return it == column_stats_.end() ? nullptr : &it->second;
}

const ColumnStats& Catalog::GetColumnStats(const std::string& table,
                                           const std::string& column) const {
  const ColumnStats* s = FindColumnStats(table, column);
  SCRPQO_CHECK(s != nullptr, "missing stats for " + table + "." + column);
  return *s;
}

}  // namespace scrpqo

// Catalog: schema metadata (tables, columns, indexes) and column statistics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/value.h"
#include "stats/histogram.h"

namespace scrpqo {

/// \brief How a generated column's values are distributed; the catalog keeps
/// this only as documentation — estimation always goes through histograms.
enum class ColumnDistribution {
  kSequential,   // 0, 1, 2, ... (primary keys)
  kUniform,      // uniform over [min, max]
  kZipf,         // Zipfian ranks mapped onto [min, max]
  kNormal,       // clipped normal
  kForeignKey,   // uniform or zipfian reference into another table's PK
};

/// \brief Column definition plus data-generation parameters.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
  ColumnDistribution distribution = ColumnDistribution::kUniform;
  double min_value = 0.0;
  double max_value = 1000.0;
  double zipf_theta = 0.0;       // skew for kZipf / kForeignKey
  std::string ref_table;         // for kForeignKey
};

/// \brief Secondary index over a single column (sorted row-id list in the
/// storage layer). `clustered` marks the physical sort order of the table.
struct IndexDef {
  std::string name;
  std::string column;
  bool clustered = false;
};

struct TableDef {
  std::string name;
  int64_t row_count = 0;
  std::vector<ColumnDef> columns;
  std::vector<IndexDef> indexes;

  int ColumnIndex(const std::string& column) const;
  bool HasColumn(const std::string& column) const {
    return ColumnIndex(column) >= 0;
  }
  const IndexDef* FindIndexOn(const std::string& column) const;
};

/// \brief Schema + statistics registry for one database.
class Catalog {
 public:
  Status AddTable(TableDef def);
  const TableDef* FindTable(const std::string& name) const;
  const TableDef& GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  void SetColumnStats(const std::string& table, const std::string& column,
                      ColumnStats stats);
  const ColumnStats* FindColumnStats(const std::string& table,
                                     const std::string& column) const;
  const ColumnStats& GetColumnStats(const std::string& table,
                                    const std::string& column) const;

 private:
  std::map<std::string, TableDef> tables_;
  std::map<std::string, ColumnStats> column_stats_;  // "table.column"
};

}  // namespace scrpqo

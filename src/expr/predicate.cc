#include "expr/predicate.h"

#include "common/status.h"

namespace scrpqo {

std::string CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
  }
  return "?";
}

bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  int c = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
    case CompareOp::kEq:
      return c == 0;
  }
  return false;
}

std::string PredicateTemplate::ToString() const {
  std::string rhs = parameterized() ? ("$" + std::to_string(param_slot))
                                    : literal.ToString();
  return "t" + std::to_string(table_index) + "." + column + " " +
         CompareOpName(op) + " " + rhs;
}

std::string BoundPredicate::ToString() const {
  return column + " " + CompareOpName(op) + " " + value.ToString();
}

}  // namespace scrpqo

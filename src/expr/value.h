// Runtime values flowing through predicates and the executor.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace scrpqo {

enum class DataType {
  kInt64,
  kDouble,
  kString,
};

std::string DataTypeName(DataType type);

/// \brief A typed scalar value. Kept deliberately small: the engine's
/// parameterized predicates are numeric range predicates, strings appear
/// only as payload columns.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  DataType type() const {
    switch (v_.index()) {
      case 0:
        return DataType::kInt64;
      case 1:
        return DataType::kDouble;
      default:
        return DataType::kString;
    }
  }

  bool is_int64() const { return v_.index() == 0; }
  bool is_double() const { return v_.index() == 1; }
  bool is_string() const { return v_.index() == 2; }

  int64_t int64() const { return std::get<int64_t>(v_); }
  double dbl() const { return std::get<double>(v_); }
  const std::string& str() const { return std::get<std::string>(v_); }

  /// Numeric view used for histogram/range arithmetic. Strings order by
  /// a stable 8-byte prefix encoding.
  double AsDouble() const;

  /// Three-way comparison consistent with AsDouble ordering for numerics
  /// and lexicographic ordering for strings.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  std::string ToString() const;

  /// Stable hash for hash joins / aggregation.
  size_t Hash() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace scrpqo

// Predicate templates: comparisons of a base-table column against either a
// literal or a parameter slot. Parameterized one-sided range predicates are
// the paper's workload model (Section 7.1).
#pragma once

#include <cstdint>
#include <string>

#include "expr/value.h"

namespace scrpqo {

enum class CompareOp {
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
};

std::string CompareOpName(CompareOp op);

/// Evaluates `lhs op rhs`.
bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs);

/// Sentinel for PredicateTemplate::param_slot meaning "not parameterized".
inline constexpr int kNoParamSlot = -1;

/// \brief A single-column comparison in a query template.
///
/// `table_index` indexes into the template's table list; `column` names the
/// column in that table. When `param_slot >= 0` the right-hand side is bound
/// per query instance and the predicate contributes one dimension to the
/// instance's selectivity vector; otherwise `literal` is fixed.
struct PredicateTemplate {
  int table_index = 0;
  std::string column;
  CompareOp op = CompareOp::kLe;
  int param_slot = kNoParamSlot;
  Value literal;

  bool parameterized() const { return param_slot != kNoParamSlot; }

  std::string ToString() const;
};

/// \brief A predicate with its right-hand side resolved for a specific
/// query instance; this is what scans evaluate and histograms estimate.
struct BoundPredicate {
  std::string column;
  CompareOp op = CompareOp::kLe;
  Value value;
  /// Which selectivity dimension this predicate feeds (kNoParamSlot for
  /// literal predicates); carried through the memo so Recost can rebind it.
  int param_slot = kNoParamSlot;

  bool Matches(const Value& column_value) const {
    return EvalCompare(column_value, op, value);
  }

  std::string ToString() const;
};

}  // namespace scrpqo

#include "expr/value.h"

#include <cstring>
#include <functional>

#include "common/status.h"

namespace scrpqo {

std::string DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

double Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(int64());
  if (is_double()) return dbl();
  // Stable numeric encoding of up to the first 8 bytes of the string.
  const std::string& s = str();
  double acc = 0.0;
  for (size_t i = 0; i < 8; ++i) {
    unsigned char c = i < s.size() ? static_cast<unsigned char>(s[i]) : 0;
    acc = acc * 256.0 + static_cast<double>(c);
  }
  return acc;
}

int Value::Compare(const Value& other) const {
  if (is_string() && other.is_string()) {
    int c = str().compare(other.str());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  SCRPQO_CHECK(!is_string() && !other.is_string(),
               "cannot compare string with numeric value");
  if (is_int64() && other.is_int64()) {
    int64_t a = int64(), b = other.int64();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  double a = AsDouble(), b = other.AsDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::ToString() const {
  if (is_int64()) return std::to_string(int64());
  if (is_double()) return std::to_string(dbl());
  return "'" + str() + "'";
}

size_t Value::Hash() const {
  if (is_int64()) return std::hash<int64_t>()(int64());
  if (is_double()) {
    double d = dbl();
    // Normalize -0.0 and integral doubles so int/double joins hash alike.
    if (d == 0.0) d = 0.0;
    return std::hash<double>()(d);
  }
  return std::hash<std::string>()(str());
}

}  // namespace scrpqo

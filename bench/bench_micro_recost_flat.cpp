// Flat-program vs tree-walk recost kernel (the tentpole perf gate).
//
// For the paper's multi-join RD2 templates at d = 2/4/8 this times, on the
// SAME cached plans and selectivity vectors:
//   - tree:  CostModel::RecostTree (recursive pointer chase; the old path)
//   - flat:  RecostProgram::Run (postorder linear scan; the new path)
//   - batch: RecostService::RecostMany over a pool of cached plans (one
//            sVector bind, N program scans — the redundancy-sweep shape)
// and emits machine-readable BENCH_recost.json. Before timing anything it
// verifies flat == tree to 1e-9 relative on every (plan, sv) pair it will
// measure, so the numbers can never come from a divergent kernel.
//
// Flags:
//   --out=PATH          output JSON path (default BENCH_recost.json)
//   --min-speedup=S     exit non-zero unless geomean(tree/flat) >= S
//                       (CI smoke uses 1.0: "flat must not be slower")
// Env: BENCH_DUMP_PLAN=1 prints each timed plan tree before measuring.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "optimizer/optimizer.h"
#include "optimizer/recost.h"
#include "workload/instance_gen.h"
#include "workload/schemas.h"
#include "workload/templates.h"

namespace {

using namespace scrpqo;

/// ns per op of `fn`. Self-calibrates the batch size until one timed
/// window exceeds ~10ms, then reports the MINIMUM over 16 windows — the
/// noise-robust statistic on a shared/single-CPU container, where the
/// mean absorbs every scheduler preemption (and short windows make a
/// clean, preemption-free sample far more likely).
template <typename Fn>
double TimeNsPerOp(Fn&& fn) {
  fn();  // warm caches / fault in pages
  int64_t iters = 8;
  double ns = 0.0;
  for (;;) {
    auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    auto t1 = std::chrono::steady_clock::now();
    ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (ns >= 1e7 || iters >= (int64_t{1} << 30)) break;
    iters *= 2;
  }
  double best = ns / static_cast<double>(iters);
  for (int rep = 0; rep < 15; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    auto t1 = std::chrono::steady_clock::now();
    ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    best = std::min(best, ns / static_cast<double>(iters));
  }
  return best;
}

struct DimResult {
  int d = 0;
  int plan_nodes = 0;
  int pool_size = 0;
  double tree_ns = 0.0;
  double flat_ns = 0.0;
  double batch_ns_per_plan = 0.0;
  double speedup = 0.0;
};

DimResult RunDimension(const BenchmarkDb& rd2, int d) {
  BoundTemplate bt = BuildRd2TemplateWithDimensions(rd2, d);
  Optimizer optimizer(&rd2.db);
  InstanceGenOptions gen;
  gen.m = 64;
  gen.seed = 1234 + static_cast<uint64_t>(d);
  std::vector<WorkloadInstance> instances = GenerateInstances(bt, gen);

  // Pool of distinct cached plans — the shape a live plan store has.
  std::vector<CachedPlan> pool;
  std::map<uint64_t, bool> seen;
  for (const auto& wi : instances) {
    OptimizationResult r =
        optimizer.OptimizeWithSVector(wi.instance, wi.svector);
    CachedPlan c = MakeCachedPlan(r);
    if (!seen.emplace(c.signature, true).second) continue;
    pool.push_back(std::move(c));
    if (pool.size() >= 16) break;
  }

  const CostModel& model = optimizer.cost_model();
  // Equivalence guard over everything we are about to time.
  for (const CachedPlan& plan : pool) {
    for (const auto& wi : instances) {
      double tree = model.RecostTree(*plan.plan, wi.svector);
      double flat = plan.program.Run(wi.svector, model.params());
      if (std::abs(flat - tree) > std::abs(tree) * 1e-9) {
        std::fprintf(stderr,
                     "FATAL: flat/tree divergence d=%d: %.17g vs %.17g\n",
                     d, flat, tree);
        std::exit(2);
      }
    }
  }

  if (std::getenv("BENCH_DUMP_PLAN") != nullptr) {
    std::printf("d=%d plan:\n%s\n", d, pool.front().plan->ToString().c_str());
  }
  DimResult out;
  out.d = d;
  out.plan_nodes = pool.front().plan->NodeCount();
  out.pool_size = static_cast<int>(pool.size());

  const CachedPlan& hot = pool.front();
  // Each timed "op" sweeps every sVector once, so per-call harness cost
  // (loop bookkeeping, the sink dependency) amortizes to ~zero and the
  // reported ns/call is the kernel alone — identically for both paths.
  std::vector<const SVector*> svs;
  for (const auto& wi : instances) svs.push_back(&wi.svector);
  const double n_sv = static_cast<double>(svs.size());
  double sink = 0.0;
  out.tree_ns = TimeNsPerOp([&] {
                  for (const SVector* sv : svs) {
                    sink += model.RecostTree(*hot.plan, *sv);
                  }
                }) /
                n_sv;
  out.flat_ns = TimeNsPerOp([&] {
                  for (const SVector* sv : svs) {
                    sink += hot.program.Run(*sv, model.params());
                  }
                }) /
                n_sv;

  RecostService recost(&model);
  std::vector<const CachedPlan*> ptrs;
  for (const CachedPlan& p : pool) ptrs.push_back(&p);
  std::vector<double> costs(ptrs.size());
  double batch_ns = TimeNsPerOp([&] {
                      for (const SVector* sv : svs) {
                        sink += static_cast<double>(
                            recost.RecostMany(ptrs, *sv, costs));
                      }
                    }) /
                    n_sv;
  out.batch_ns_per_plan = batch_ns / static_cast<double>(ptrs.size());
  out.speedup = out.tree_ns / out.flat_ns;
  if (sink == 42.0) std::printf("#");  // defeat whole-loop elision
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_recost.json";
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  SchemaScale scale;
  BenchmarkDb rd2 = BuildRd2(scale);
  std::vector<DimResult> results;
  for (int d : {2, 4, 8}) {
    results.push_back(RunDimension(rd2, d));
    const DimResult& r = results.back();
    std::printf(
        "d=%d nodes=%d pool=%d tree=%.1fns flat=%.1fns batch/plan=%.1fns "
        "speedup=%.2fx\n",
        r.d, r.plan_nodes, r.pool_size, r.tree_ns, r.flat_ns,
        r.batch_ns_per_plan, r.speedup);
  }

  double log_sum = 0.0;
  for (const DimResult& r : results) log_sum += std::log(r.speedup);
  double geomean = std::exp(log_sum / static_cast<double>(results.size()));
  std::printf("geomean_speedup=%.2fx\n", geomean);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_recost_flat\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const DimResult& r = results[i];
    std::fprintf(f,
                 "    {\"dimensions\": %d, \"plan_nodes\": %d, "
                 "\"pool_size\": %d, \"tree_ns_per_call\": %.2f, "
                 "\"flat_ns_per_call\": %.2f, \"batch_ns_per_plan\": %.2f, "
                 "\"speedup\": %.3f}%s\n",
                 r.d, r.plan_nodes, r.pool_size, r.tree_ns, r.flat_ns,
                 r.batch_ns_per_plan, r.speedup,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"geomean_speedup\": %.3f\n}\n", geomean);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (min_speedup > 0.0 && geomean < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: geomean speedup %.3f < required %.3f\n", geomean,
                 min_speedup);
    return 1;
  }
  return 0;
}

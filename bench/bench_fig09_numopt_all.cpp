// Figure 9: optimizer-call percentage (numOpt %) across techniques.
// Expected shape: PCM2 very high on adversarial orderings; SCR2 close to
// the best heuristic (Ranges); OptOnce trivially lowest.
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 9: numOpt %% by technique ==\n");
  EvaluationSuite suite = MakeSuite();

  PrintTableHeader({"technique", "avg %", "p50 %", "p90 %", "p95 %",
                    "max %"});
  for (const auto& nf : AllTechniques(2.0)) {
    auto seqs = suite.RunAll(nf.factory);
    DistSummary s = Summarize(ExtractNumOptPct(seqs));
    PrintTableRow({nf.name, FormatDouble(s.avg, 1), FormatDouble(s.p50, 1),
                   FormatDouble(s.p90, 1), FormatDouble(s.p95, 1),
                   FormatDouble(s.max, 1)});
  }
  return 0;
}

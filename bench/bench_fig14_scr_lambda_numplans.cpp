// Figure 14: numPlans for SCR as lambda varies. Expected shape: plans
// cached drop substantially as lambda loosens.
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 14: SCR numPlans vs lambda ==\n");
  EvaluationSuite suite = MakeSuite();

  PrintTableHeader({"lambda", "avg", "p50", "p90", "p95", "max"});
  for (double lambda : {1.1, 1.2, 1.5, 2.0}) {
    auto seqs = suite.RunAll(ScrFactory(lambda).factory);
    DistSummary s = Summarize(ExtractNumPlans(seqs));
    PrintTableRow({FormatDouble(lambda, 1), FormatDouble(s.avg, 1),
                   FormatDouble(s.p50, 0), FormatDouble(s.p90, 0),
                   FormatDouble(s.p95, 0), FormatDouble(s.max, 0)});
  }
  return 0;
}

// Robustness probe beyond the paper's tables (motivated by Appendix H.7's
// note that execution-time results fold in "cost modelling error"): what
// happens to the guarantee when statistics are stale? We build the catalog
// statistics from one data generation and the actual rows from another
// (same schema, different seed), then run the execution experiment. The
// estimated-cost guarantee still holds by construction; the question is how
// much *executed* quality degrades for SCR vs the baselines when the cost
// model is systematically wrong.
#include <algorithm>

#include "bench/bench_util.h"
#include "common/env.h"
#include "executor/executor.h"
#include "workload/instance_gen.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Stale-statistics robustness (executed quality) ==\n");
  // Fresh: stats and rows from the same generation. Stale: rows regenerated
  // with a different seed while the catalog keeps the old statistics.
  SchemaScale fresh_scale;
  fresh_scale.factor = EnvDouble("SCRPQO_SCALE", 0.15);
  fresh_scale.materialize_rows = true;

  SchemaScale stale_rows_scale = fresh_scale;
  stale_rows_scale.seed = fresh_scale.seed + 104729;  // different universe

  for (bool stale : {false, true}) {
    BenchmarkDb stats_db = BuildTpchSkewed(fresh_scale);
    BenchmarkDb rows_db =
        BuildTpchSkewed(stale ? stale_rows_scale : fresh_scale);
    // Graft: optimizer sees stats_db's statistics; executor runs against
    // rows_db's data. (Catalog row counts match; histograms diverge.)
    BoundTemplate bt = BuildExample2dTemplate(stats_db);
    Optimizer optimizer(&stats_db.db);

    InstanceGenOptions gen;
    gen.m = static_cast<int>(EnvInt64("SCRPQO_EXEC_M", 200));
    auto instances = GenerateInstances(bt, gen);
    Oracle oracle = Oracle::Build(optimizer, instances);
    auto perm =
        MakeOrdering(OrderingKind::kRandom, oracle.OrderingInfo(), 3);

    // The executor needs instances bound against the *rows* database's
    // template copy (the same template object works: it holds table names).
    std::printf("\n%s statistics\n", stale ? "STALE" : "fresh");
    PrintTableHeader({"technique", "exec time s", "rows checksum ok",
                      "plans"});
    std::vector<NamedFactory> roster = {
        {"OptAlways", [] { return std::make_unique<OptAlways>(); }, 0.0},
        {"OptOnce", [] { return std::make_unique<OptOnce>(); }, 0.0},
        ScrFactory(1.1),
        {"Ranges(0.01)",
         [] { return std::make_unique<Ranges>(RangesOptions{}); }, 0.0},
    };
    // Reference row counts from OptAlways (per instance), to confirm every
    // technique still returns correct results under stale stats.
    std::vector<int64_t> reference(instances.size(), -1);
    for (const auto& nf : roster) {
      auto technique = nf.factory();
      EngineContext engine(&stats_db.db, &optimizer);
      engine.SetOracle([&oracle](const WorkloadInstance& wi) {
        return oracle.result(wi.id);
      });
      double exec_seconds = 0.0;
      bool all_match = true;
      for (int idx : perm) {
        const WorkloadInstance& wi = instances[static_cast<size_t>(idx)];
        PlanChoice choice = technique->OnInstance(wi, &engine);
        ExecutionResult r =
            ExecutePlan(rows_db.db, wi.instance, *choice.plan->plan);
        exec_seconds += r.elapsed_seconds;
        int64_t& ref = reference[static_cast<size_t>(idx)];
        if (ref < 0) {
          ref = r.rows;
        } else if (ref != r.rows) {
          all_match = false;
        }
      }
      PrintTableRow({nf.name, FormatDouble(exec_seconds, 2),
                     all_match ? "yes" : "NO",
                     std::to_string(technique->PeakPlansCached())});
    }
  }
  std::printf(
      "\nCorrectness never depends on statistics (plans bind parameters at "
      "run time);\nstale stats only shift which plan is chosen. SCR's "
      "guarantee is over estimated\ncosts, so executed quality degrades "
      "gracefully with estimation error, like\nevery cost-based technique "
      "(paper Appendix H.7's caveat).\n");
  return 0;
}

// Section 6.1 memory-overheads accounting: the plan list dominates the plan
// cache's footprint while instance-list 5-tuples are ~100 bytes each. This
// harness measures both exactly (via the cache snapshot API) for SCR across
// part of the suite and compares against the store-everything configuration.
#include "bench/bench_util.h"
#include "optimizer/plan_memory.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Section 6.1: plan-cache memory overheads ==\n");
  SuiteConfig cfg = SuiteConfig::FromEnv();
  cfg.num_templates = std::min(cfg.num_templates, 24);
  EvaluationSuite suite(cfg);

  PrintTableHeader({"variant", "plans avg", "instances avg", "plan KB avg",
                    "instance KB avg"});
  for (double lambda_r : {1.0, -1.0}) {
    std::vector<double> plans, instances_stored, plan_kb, inst_kb;
    for (const auto& tw : suite.workloads()) {
      EngineContext engine(&tw.bound.db->db, tw.optimizer.get());
      engine.SetOracle([&tw](const WorkloadInstance& wi) {
        return tw.oracle.result(wi.id);
      });
      Scr scr(ScrOptions{.lambda = 2.0, .lambda_r = lambda_r});
      std::vector<int> perm = MakeOrdering(
          OrderingKind::kRandom, tw.oracle.OrderingInfo(), cfg.seed + 77);
      for (int idx : perm) {
        scr.OnInstance(tw.instances[static_cast<size_t>(idx)], &engine);
      }
      // Exact footprint of the final cache contents.
      int64_t plan_bytes = 0;
      for (const auto& plan : scr.SnapshotPlans()) {
        plan_bytes += PlanMemoryBytes(*plan);
      }
      int64_t instance_bytes =
          scr.NumInstancesStored() *
          InstanceEntryBytes(tw.bound.tmpl->dimensions());
      plans.push_back(static_cast<double>(scr.NumPlansCached()));
      instances_stored.push_back(
          static_cast<double>(scr.NumInstancesStored()));
      plan_kb.push_back(static_cast<double>(plan_bytes) / 1024.0);
      inst_kb.push_back(static_cast<double>(instance_bytes) / 1024.0);
    }
    PrintTableRow({lambda_r >= 1.0 ? "store all (lambda_r=1)" : "paper (sqrt)",
                   FormatDouble(Mean(plans), 1),
                   FormatDouble(Mean(instances_stored), 1),
                   FormatDouble(Mean(plan_kb), 2),
                   FormatDouble(Mean(inst_kb), 2)});
  }
  std::printf("\n(plan skeletons here are a few KB — our engine's plans are "
              "much smaller\nthan SQL Server's shrunkenMemo, but the ratio "
              "plan-list >> instance-list\nmatches Section 6.1.)\n");
  return 0;
}

// Figure 7: MSO and TotalCostRatio distribution for PCM2 and SCR2.
// Expected shape: both mostly respect the lambda = 2 bound; rare violations
// from PCM/BCG assumption breaks, fewer for SCR than PCM; SCR2 handles ~99%
// of sequences with TC comfortably close to 1.
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 7: MSO / TotalCostRatio, PCM2 vs SCR2 ==\n");
  EvaluationSuite suite = MakeSuite();

  for (const auto& nf : {PcmFactory(2.0), ScrFactory(2.0)}) {
    auto seqs = suite.RunAll(nf.factory, 2.0);
    std::printf("\n%s over %zu sequences\n", nf.name.c_str(), seqs.size());
    PrintSummaryRow("  MSO", Summarize(ExtractMso(seqs)));
    PrintSummaryRow("  TotalCostRatio", Summarize(ExtractTcr(seqs)));
    PrintSortedCurve("  MSO curve", ExtractMso(seqs));
    PrintSortedCurve("  TC  curve", ExtractTcr(seqs));

    int64_t instances = 0, violations = 0;
    int seq_with_violation = 0;
    for (const auto& s : seqs) {
      instances += s.m;
      violations += s.bound_violations;
      if (s.bound_violations > 0) ++seq_with_violation;
    }
    std::printf(
        "  bound (lambda=2) violations: %lld of %lld instances (%.3f%%), "
        "in %d/%zu sequences\n",
        static_cast<long long>(violations),
        static_cast<long long>(instances),
        100.0 * static_cast<double>(violations) /
            static_cast<double>(instances),
        seq_with_violation, seqs.size());
    std::vector<double> tcr = ExtractTcr(seqs);
    std::printf("  sequences with TC <= 2.16: %.1f%%\n",
                100.0 *
                    static_cast<double>(std::count_if(
                        tcr.begin(), tcr.end(),
                        [](double v) { return v <= 2.16; })) /
                    static_cast<double>(tcr.size()));
  }
  return 0;
}

// Figure 12: numOpt % as the number of parameterized predicates d grows
// (RD2 sweep templates, d = 2..10). Expected shape: PCM2's optimizer calls
// climb steeply (~+10%/dimension in the paper, beyond 50% at d=10) while
// SCR2 starts lower and grows far more slowly.
#include "bench/bench_util.h"
#include "common/env.h"
#include "workload/instance_gen.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 12: numOpt %% vs dimensions d (PCM2 vs SCR2) ==\n");
  SchemaScale scale;
  BenchmarkDb rd2 = BuildRd2(scale);
  Optimizer optimizer(&rd2.db);
  int m = static_cast<int>(EnvInt64("SCRPQO_M", 1000));

  PrintTableHeader({"d", "PCM2 %", "SCR2 %"});
  for (int d = 2; d <= 10; ++d) {
    BoundTemplate bt = BuildRd2TemplateWithDimensions(rd2, d);
    InstanceGenOptions gen;
    gen.m = m;
    gen.seed = 99 + static_cast<uint64_t>(d);
    auto instances = GenerateInstances(bt, gen);
    Oracle oracle = Oracle::Build(optimizer, instances);
    std::vector<int> perm =
        MakeOrdering(OrderingKind::kRandom, oracle.OrderingInfo(), 3);

    auto run = [&](const NamedFactory& nf) {
      auto technique = nf.factory();
      RunSequenceOptions ropts;
      ropts.ordering_name = "random";
      return RunSequence(optimizer, instances, perm, oracle, technique.get(),
                         ropts)
          .NumOptPercent();
    };
    PrintTableRow({std::to_string(d), FormatDouble(run(PcmFactory(2.0)), 1),
                   FormatDouble(run(ScrFactory(2.0)), 1)});
  }
  return 0;
}

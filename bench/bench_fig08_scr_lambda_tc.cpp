// Figure 8: TotalCostRatio for SCR with lambda in {1.1, 1.2, 1.5, 2.0}.
// Expected shape: TC stays consistently below the allowed lambda, with the
// gap widening as lambda grows (avg TC near 1.1 even at lambda = 2).
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 8: SCR TotalCostRatio vs lambda ==\n");
  EvaluationSuite suite = MakeSuite();

  PrintTableHeader({"lambda", "TC avg", "TC p50", "TC p95", "TC max",
                    "headroom"});
  for (double lambda : {1.1, 1.2, 1.5, 2.0}) {
    auto seqs = suite.RunAll(ScrFactory(lambda).factory, lambda);
    DistSummary s = Summarize(ExtractTcr(seqs));
    PrintTableRow({FormatDouble(lambda, 1), FormatDouble(s.avg, 3),
                   FormatDouble(s.p50, 3), FormatDouble(s.p95, 3),
                   FormatDouble(s.max, 3),
                   FormatDouble(lambda - s.avg, 3)});
  }
  return 0;
}

// Figure 10: numOpt % for SCR as lambda varies.
// Expected shape: large improvement from lambda 1.1 to 2 (paper: avg 12% ->
// 3%, p95 ~35% -> ~13%).
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 10: SCR numOpt %% vs lambda ==\n");
  EvaluationSuite suite = MakeSuite();

  PrintTableHeader({"lambda", "avg %", "p50 %", "p90 %", "p95 %", "max %"});
  for (double lambda : {1.1, 1.2, 1.5, 2.0}) {
    auto seqs = suite.RunAll(ScrFactory(lambda).factory);
    DistSummary s = Summarize(ExtractNumOptPct(seqs));
    PrintTableRow({FormatDouble(lambda, 1), FormatDouble(s.avg, 1),
                   FormatDouble(s.p50, 1), FormatDouble(s.p90, 1),
                   FormatDouble(s.p95, 1), FormatDouble(s.max, 1)});
  }
  return 0;
}

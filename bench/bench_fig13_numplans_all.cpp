// Figure 13: plans cached (numPlans) by technique (paper shows log scale;
// SCR stores roughly an order of magnitude fewer plans than the rest).
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 13: numPlans by technique ==\n");
  EvaluationSuite suite = MakeSuite();

  PrintTableHeader({"technique", "avg", "p50", "p90", "p95", "max"});
  for (const auto& nf : AllTechniques(2.0)) {
    auto seqs = suite.RunAll(nf.factory);
    DistSummary s = Summarize(ExtractNumPlans(seqs));
    PrintTableRow({nf.name, FormatDouble(s.avg, 1), FormatDouble(s.p50, 0),
                   FormatDouble(s.p90, 0), FormatDouble(s.p95, 0),
                   FormatDouble(s.max, 0)});
  }
  return 0;
}

// Micro-benchmark (Appendix B): "there can be alternative implementations
// of Recost that require lesser memory overheads at the cost of increased
// time overheads for each Recost call." We quantify that trade: Recost on a
// live plan tree vs. Recost on a serialized plan (deserialize, re-derive,
// discard), plus the memory footprint of each representation.
#include <benchmark/benchmark.h>

#include "optimizer/optimizer.h"
#include "optimizer/plan_memory.h"
#include "optimizer/plan_serde.h"
#include "optimizer/recost.h"
#include "workload/instance_gen.h"
#include "workload/schemas.h"
#include "workload/templates.h"

namespace {

using namespace scrpqo;

struct Fixture {
  BenchmarkDb rd2;
  BoundTemplate bt;
  std::unique_ptr<Optimizer> optimizer;
  std::vector<WorkloadInstance> instances;
  CachedPlan cached;
  std::string serialized;

  Fixture() {
    SchemaScale scale;
    rd2 = BuildRd2(scale);
    bt = BuildRd2TemplateWithDimensions(rd2, 4);
    optimizer = std::make_unique<Optimizer>(&rd2.db);
    InstanceGenOptions gen;
    gen.m = 64;
    instances = GenerateInstances(bt, gen);
    OptimizationResult r = optimizer->OptimizeWithSVector(
        instances[0].instance, instances[0].svector);
    cached = MakeCachedPlan(r);
    serialized = SerializePlan(*r.plan);
  }

  static Fixture& Get() {
    static Fixture f;
    return f;
  }
};

void BM_RecostLiveTree(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  RecostService recost(&f.optimizer->cost_model());
  size_t i = 0;
  for (auto _ : state) {
    const auto& wi = f.instances[i++ % f.instances.size()];
    benchmark::DoNotOptimize(recost.Recost(f.cached, wi.svector));
  }
  state.counters["resident_bytes"] =
      static_cast<double>(PlanMemoryBytes(*f.cached.plan));
}
BENCHMARK(BM_RecostLiveTree);

void BM_RecostFromSerialized(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const CostModel& cm = f.optimizer->cost_model();
  size_t i = 0;
  for (auto _ : state) {
    const auto& wi = f.instances[i++ % f.instances.size()];
    auto plan = DeserializePlan(f.serialized);
    benchmark::DoNotOptimize(
        cm.RecostTree(*plan.ValueOrDie(), wi.svector));
  }
  state.counters["resident_bytes"] =
      static_cast<double>(f.serialized.size());
}
BENCHMARK(BM_RecostFromSerialized);

void BM_SerializePlan(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializePlan(*f.cached.plan));
  }
}
BENCHMARK(BM_SerializePlan);

}  // namespace

BENCHMARK_MAIN();

// getPlan throughput under concurrent readers (the AsyncScr read path).
//
// Warms an AsyncScr cache on an RD2 multi-join template, then drives it
// from 1/2/4/8 request threads re-querying the warmed instances (pure
// selectivity/cost-check traffic: every call takes the shared lock, none
// optimizes). Reports queries/sec and p50/p99 getPlan latency via the
// registry's "scr.get_plan_micros" log-histogram, plus the
// shared/exclusive lock-acquisition counters, and emits machine-readable
// BENCH_throughput.json. Scaling beyond one thread requires hardware
// cores: on a single-CPU container the 8-thread row measures contention,
// not parallelism (the JSON records hw_threads so CI can judge).
//
// Flags:
//   --out=PATH         output JSON path (default BENCH_throughput.json)
//   --duration-ms=N    timed window per thread count (default 300)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "pqo/async_scr.h"
#include "workload/instance_gen.h"
#include "workload/schemas.h"
#include "workload/templates.h"

namespace {

using namespace scrpqo;

struct ThreadResult {
  int threads = 0;
  int64_t queries = 0;
  double qps = 0.0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  int64_t lock_shared = 0;
  int64_t lock_exclusive = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  int duration_ms = 300;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--duration-ms=", 14) == 0) {
      duration_ms = std::atoi(argv[i] + 14);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  SchemaScale scale;
  BenchmarkDb rd2 = BuildRd2(scale);
  BoundTemplate bt = BuildRd2TemplateWithDimensions(rd2, 4);
  Optimizer optimizer(&rd2.db);
  EngineContext engine(&rd2.db, &optimizer);
  InstanceGenOptions gen;
  gen.m = 48;
  gen.seed = 77;
  std::vector<WorkloadInstance> warmed = GenerateInstances(bt, gen);

  AsyncScr scr(ScrOptions{.lambda = 2.0});
  for (const auto& wi : warmed) {
    (void)scr.OnInstance(wi, &engine);
    scr.Flush();
  }

  std::vector<ThreadResult> results;
  for (int threads : {1, 2, 4, 8}) {
    // Fresh registry per row so histograms and lock counters cover exactly
    // this thread count's window.
    MetricsRegistry registry;
    scr.SetObs(ObsHooks{nullptr, &registry});
    std::atomic<bool> stop{false};
    std::atomic<int64_t> queries{0};
    std::atomic<int64_t> misses{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        size_t i = static_cast<size_t>(t) * 13;
        int64_t local = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const WorkloadInstance& wi = warmed[i++ % warmed.size()];
          PlanChoice c = scr.OnInstance(wi, &engine);
          if (c.optimized) misses.fetch_add(1);
          ++local;
        }
        queries.fetch_add(local);
      });
    }
    auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
    stop.store(true);
    for (auto& th : pool) th.join();
    auto t1 = std::chrono::steady_clock::now();
    scr.Flush();
    double secs = std::chrono::duration<double>(t1 - t0).count();

    auto snap = registry.Snapshot();
    ThreadResult r;
    r.threads = threads;
    r.queries = queries.load();
    r.qps = static_cast<double>(r.queries) / secs;
    if (const HistogramSnapshot* h =
            snap.FindHistogram("scr.get_plan_micros")) {
      r.p50_micros = h->p50;
      r.p99_micros = h->p99;
    }
    r.lock_shared = snap.CounterValue("async_scr.lock_shared");
    r.lock_exclusive = snap.CounterValue("async_scr.lock_exclusive");
    results.push_back(r);
    std::printf(
        "threads=%d qps=%.0f p50=%.1fus p99=%.1fus shared=%lld "
        "exclusive=%lld misses=%lld\n",
        r.threads, r.qps, r.p50_micros, r.p99_micros,
        static_cast<long long>(r.lock_shared),
        static_cast<long long>(r.lock_exclusive),
        static_cast<long long>(misses.load()));
  }
  scr.SetObs(ObsHooks{});

  double scaling =
      results.front().qps > 0.0 ? results.back().qps / results.front().qps
                                : 0.0;
  unsigned hw = std::thread::hardware_concurrency();
  std::printf("scaling_8_vs_1=%.2fx hw_threads=%u\n", scaling, hw);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"throughput_getplan\",\n"
               "  \"hw_threads\": %u,\n  \"results\": [\n",
               hw);
  for (size_t i = 0; i < results.size(); ++i) {
    const ThreadResult& r = results[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"queries\": %lld, \"qps\": %.1f, "
                 "\"p50_micros\": %.2f, \"p99_micros\": %.2f, "
                 "\"lock_shared\": %lld, \"lock_exclusive\": %lld}%s\n",
                 r.threads, static_cast<long long>(r.queries), r.qps,
                 r.p50_micros, r.p99_micros,
                 static_cast<long long>(r.lock_shared),
                 static_cast<long long>(r.lock_exclusive),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"scaling_8_vs_1\": %.3f\n}\n", scaling);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

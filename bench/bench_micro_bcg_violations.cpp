// Micro-experiment (Section 7.2 / Appendix G): how often does the engine's
// cost model actually violate the PCM and BCG assumptions the guarantees
// rest on? For every optimal plan at a grid of instances we scale a single
// selectivity dimension by alpha (directly in sVector space — Recost only
// needs selectivities) and compare the re-derived cost against the
// f(alpha) = alpha bounds:
//     cost(P, qa)  <=  cost(P, qb)  <=  alpha * cost(P, qa).
// The paper observes violations are rare; this harness quantifies "rare"
// for our engine. Sort spills and n log n terms are the expected sources.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/math_util.h"
#include "optimizer/optimizer.h"
#include "optimizer/recost.h"
#include "workload/instance_gen.h"
#include "workload/schemas.h"
#include "workload/templates.h"

using namespace scrpqo;

int main() {
  std::printf("== BCG/PCM violation frequency probe (Section 7.2) ==\n");
  SchemaScale scale;
  std::vector<BenchmarkDb> dbs = BuildAllDatabases(scale);
  TemplateGenOptions topts;
  topts.num_templates = 24;
  std::vector<BoundTemplate> templates = BuildTemplates(dbs, topts);

  int64_t checks = 0, pcm_violations = 0, bcg_violations = 0;
  double worst_excess = 1.0, worst_drop = 1.0;

  for (const auto& bt : templates) {
    Optimizer optimizer(&bt.db->db);
    RecostService recost(&optimizer.cost_model());
    InstanceGenOptions gen;
    gen.m = 60;
    auto instances = GenerateInstances(bt, gen);
    for (const auto& wi : instances) {
      OptimizationResult r =
          optimizer.OptimizeWithSVector(wi.instance, wi.svector);
      CachedPlan plan = MakeCachedPlan(r);
      double base = recost.Recost(plan, wi.svector);
      for (size_t dim = 0; dim < wi.svector.size(); ++dim) {
        for (double alpha : {1.5, 2.0, 4.0, 8.0}) {
          SVector scaled = wi.svector;
          scaled[dim] = std::min(scaled[dim] * alpha, 1.0);
          if (scaled[dim] <= wi.svector[dim]) continue;  // clamped away
          double actual_alpha = scaled[dim] / wi.svector[dim];
          double moved = recost.Recost(plan, scaled);
          ++checks;
          if (moved < base * 0.999) {
            ++pcm_violations;
            worst_drop = std::min(worst_drop, moved / base);
          }
          if (moved > actual_alpha * base * 1.001) {
            ++bcg_violations;
            worst_excess = std::max(worst_excess,
                                    moved / (actual_alpha * base));
          }
        }
      }
    }
  }

  std::printf("single-dimension scalings checked: %lld\n",
              static_cast<long long>(checks));
  std::printf("PCM (monotonicity) violations:     %lld (%.3f%%), worst "
              "drop %.3fx\n",
              static_cast<long long>(pcm_violations),
              100.0 * static_cast<double>(pcm_violations) /
                  static_cast<double>(checks),
              worst_drop);
  std::printf("BCG (f(a)=a) upper violations:     %lld (%.3f%%), worst "
              "excess %.3fx\n",
              static_cast<long long>(bcg_violations),
              100.0 * static_cast<double>(bcg_violations) /
                  static_cast<double>(checks),
              worst_excess);
  std::printf("(paper Section 7.2: such violations exist but are rare — "
              "sort spills\nand superlinear terms are the sources; SCR's "
              "Appendix G detection handles\nthe fallout.)\n");
  return 0;
}

// Appendix D: dynamic lambda. A decaying function maps an instance's
// optimal cost to its bound (cheap instances tolerate more sub-optimality).
// The paper's sample experiment runs 1000 instances of TPC-DS Q25 with
// lambda in [1.1, 10]; we run the Q25 analog plus the whole suite.
// Expected shape vs static lambda = lambda_min: fewer plans, fewer
// optimizer calls, and only a small TotalCostRatio increase.
#include "bench/bench_util.h"
#include "common/env.h"
#include "workload/instance_gen.h"
#include "workload/named_templates.h"

using namespace scrpqo;
using namespace scrpqo::bench;

namespace {

TechniqueFactory StaticFactory() {
  return [] { return std::make_unique<Scr>(ScrOptions{.lambda = 1.1}); };
}

TechniqueFactory DynamicFactory() {
  return [] {
    ScrOptions o;
    o.lambda = 1.1;
    o.dynamic_lambda = true;
    o.lambda_min = 1.1;
    o.lambda_max = 10.0;
    return std::make_unique<Scr>(o);
  };
}

}  // namespace

int main() {
  std::printf("== Appendix D: dynamic lambda [1.1, 10] vs static 1.1 ==\n");

  // Part 1: the paper's sample experiment on the Q25 analog.
  {
    SchemaScale scale;
    std::vector<BenchmarkDb> dbs = BuildAllDatabases(scale);
    BoundTemplate bt = BuildNamedTemplate(dbs, "TPCDS_Q25A");
    Optimizer optimizer(&bt.db->db);
    InstanceGenOptions gen;
    gen.m = static_cast<int>(EnvInt64("SCRPQO_M", 1000));
    auto instances = GenerateInstances(bt, gen);
    Oracle oracle = Oracle::Build(optimizer, instances);
    auto perm =
        MakeOrdering(OrderingKind::kRandom, oracle.OrderingInfo(), 1);

    std::printf("\nTPCDS_Q25A, %zu instances (paper: plans 148 -> 96, "
                "numOpt 502 -> 310, TC 1.03 -> 1.08)\n",
                instances.size());
    PrintTableHeader({"variant", "numOpt", "numPlans", "TC"});
    for (const auto& [name, factory] :
         std::vector<std::pair<std::string, TechniqueFactory>>{
             {"static 1.1", StaticFactory()},
             {"dynamic [1.1,10]", DynamicFactory()}}) {
      auto technique = factory();
      RunSequenceOptions ropts;
      ropts.ordering_name = "random";
      SequenceMetrics m = RunSequence(optimizer, instances, perm, oracle,
                                      technique.get(), ropts);
      PrintTableRow({name, std::to_string(m.num_opt),
                     std::to_string(m.num_plans),
                     FormatDouble(m.total_cost_ratio, 3)});
    }
  }

  // Part 2: suite-wide aggregate.
  EvaluationSuite suite = MakeSuite();
  std::printf("\nsuite-wide averages\n");
  PrintTableHeader({"variant", "avg plans", "avg numOpt %", "avg TC",
                    "p95 TC"});
  for (const auto& [name, factory] :
       std::vector<std::pair<std::string, TechniqueFactory>>{
           {"static 1.1", StaticFactory()},
           {"dynamic [1.1,10]", DynamicFactory()}}) {
    auto seqs = suite.RunAll(factory);
    PrintTableRow({name, FormatDouble(Mean(ExtractNumPlans(seqs)), 1),
                   FormatDouble(Mean(ExtractNumOptPct(seqs)), 1),
                   FormatDouble(Mean(ExtractTcr(seqs)), 3),
                   FormatDouble(Percentile(ExtractTcr(seqs), 95), 3)});
  }
  return 0;
}

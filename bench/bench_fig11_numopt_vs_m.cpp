// Figure 11: numOpt % for a 4-dimensional query as the number of instances
// m grows. Expected shape: every technique's optimizer-call fraction drops
// with m; SCR1.1 approaches PCM2's quality/overhead point and SCR2 drops
// toward ~1%.
#include "bench/bench_util.h"
#include "common/env.h"
#include "workload/instance_gen.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 11: 4-d query, numOpt %% vs m ==\n");
  SchemaScale scale;
  BenchmarkDb rd2 = BuildRd2(scale);
  BoundTemplate bt = BuildRd2TemplateWithDimensions(rd2, 4);
  Optimizer optimizer(&rd2.db);

  int64_t max_m = EnvInt64("SCRPQO_MAX_M", 10000);
  std::vector<int> ms;
  for (int m = 1000; m <= max_m; m *= 2) ms.push_back(m);

  PrintTableHeader({"m", "PCM2 %", "SCR1.1 %", "SCR2 %"});
  for (int m : ms) {
    InstanceGenOptions gen;
    gen.m = m;
    auto instances = GenerateInstances(bt, gen);
    Oracle oracle = Oracle::Build(optimizer, instances);
    std::vector<int> perm =
        MakeOrdering(OrderingKind::kRandom, oracle.OrderingInfo(), 3);

    auto run = [&](const NamedFactory& nf) {
      auto technique = nf.factory();
      RunSequenceOptions ropts;
      ropts.ordering_name = "random";
      SequenceMetrics metrics = RunSequence(optimizer, instances, perm,
                                            oracle, technique.get(), ropts);
      return metrics.NumOptPercent();
    };

    PrintTableRow({std::to_string(m), FormatDouble(run(PcmFactory(2.0)), 2),
                   FormatDouble(run(ScrFactory(1.1)), 2),
                   FormatDouble(run(ScrFactory(2.0)), 2)});
  }
  return 0;
}

// One-stop summary: runs the full technique roster over the evaluation
// suite and prints the paper's headline comparisons (Section 1 bullets and
// Section 7 aggregates) side by side. Other bench binaries break these out
// per figure; this one is the executive view.
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Paper headline summary (Sections 1 and 7) ==\n");
  EvaluationSuite suite = MakeSuite();

  struct Row {
    std::string name;
    DistSummary mso, tcr, numopt, plans;
    int64_t violations = 0;
    int64_t instances = 0;
  };
  std::vector<Row> rows;
  std::vector<NamedFactory> roster = AllTechniques(2.0);
  roster.push_back(ScrFactory(1.1));
  for (const auto& nf : roster) {
    auto seqs = suite.RunAll(nf.factory, nf.lambda_for_violations);
    Row row;
    row.name = nf.name;
    row.mso = Summarize(ExtractMso(seqs));
    row.tcr = Summarize(ExtractTcr(seqs));
    row.numopt = Summarize(ExtractNumOptPct(seqs));
    row.plans = Summarize(ExtractNumPlans(seqs));
    for (const auto& s : seqs) {
      row.violations += s.bound_violations;
      row.instances += s.m;
    }
    rows.push_back(std::move(row));
  }

  std::printf("\n-- sub-optimality --\n");
  PrintTableHeader({"technique", "MSO avg", "MSO p95", "TC avg", "TC p95",
                    "bound viol %"});
  for (const auto& r : rows) {
    double viol_pct = r.instances > 0
                          ? 100.0 * static_cast<double>(r.violations) /
                                static_cast<double>(r.instances)
                          : 0.0;
    PrintTableRow({r.name, FormatDouble(r.mso.avg, 2),
                   FormatDouble(r.mso.p95, 2), FormatDouble(r.tcr.avg, 2),
                   FormatDouble(r.tcr.p95, 2), FormatDouble(viol_pct, 3)});
  }

  std::printf("\n-- optimizer overheads (numOpt %%) --\n");
  PrintTableHeader({"technique", "avg", "p50", "p95", "max"});
  for (const auto& r : rows) {
    PrintTableRow({r.name, FormatDouble(r.numopt.avg, 1),
                   FormatDouble(r.numopt.p50, 1),
                   FormatDouble(r.numopt.p95, 1),
                   FormatDouble(r.numopt.max, 1)});
  }

  std::printf("\n-- plans cached (numPlans) --\n");
  PrintTableHeader({"technique", "avg", "p50", "p95", "max"});
  for (const auto& r : rows) {
    PrintTableRow({r.name, FormatDouble(r.plans.avg, 1),
                   FormatDouble(r.plans.p50, 0),
                   FormatDouble(r.plans.p95, 0),
                   FormatDouble(r.plans.max, 0)});
  }

  std::printf(
      "\npaper reference points (SQL Server, 90 templates x 5 orderings):\n"
      "  SCR2 p95 sub-optimality 1.22 vs PCM 1.92, heuristics > 6\n"
      "  numOpt: SCR avg 3.7%% / p95 13.9%%; best heuristic 3.2%% / 10.9%%; "
      "PCM avg > 30%%\n"
      "  numPlans p95: SCR 15, best heuristic 93, PCM 219\n");
  return 0;
}

// Micro-benchmark (Sections 1, 7.3, Appendix B): latency of the Recost API
// vs a full optimizer call vs sVector computation, plus the shrunkenMemo
// pruning ratio. The paper reports Recost up to two orders of magnitude
// faster than optimization; the reproduced engine shows the same gap.
#include <benchmark/benchmark.h>

#include <memory>

#include "optimizer/optimizer.h"
#include "optimizer/recost.h"
#include "workload/instance_gen.h"
#include "workload/schemas.h"
#include "workload/templates.h"

namespace {

using namespace scrpqo;

struct Fixture {
  BenchmarkDb rd2;
  BoundTemplate bt;
  std::unique_ptr<Optimizer> optimizer;
  std::vector<WorkloadInstance> instances;
  CachedPlan cached;

  explicit Fixture(int d) {
    SchemaScale scale;
    rd2 = BuildRd2(scale);
    bt = BuildRd2TemplateWithDimensions(rd2, d);
    optimizer = std::make_unique<Optimizer>(&rd2.db);
    InstanceGenOptions gen;
    gen.m = 64;
    instances = GenerateInstances(bt, gen);
    OptimizationResult r = optimizer->OptimizeWithSVector(
        instances[0].instance, instances[0].svector);
    cached = MakeCachedPlan(r);
  }

  static Fixture& Get(int d) {
    static std::map<int, std::unique_ptr<Fixture>> cache;
    auto it = cache.find(d);
    if (it == cache.end()) {
      it = cache.emplace(d, std::make_unique<Fixture>(d)).first;
    }
    return *it->second;
  }
};

void BM_OptimizerCall(benchmark::State& state) {
  Fixture& f = Fixture::Get(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const auto& wi = f.instances[i++ % f.instances.size()];
    OptimizationResult r =
        f.optimizer->OptimizeWithSVector(wi.instance, wi.svector);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_OptimizerCall)->Arg(2)->Arg(4)->Arg(8);

void BM_Recost(benchmark::State& state) {
  Fixture& f = Fixture::Get(static_cast<int>(state.range(0)));
  RecostService recost(&f.optimizer->cost_model());
  size_t i = 0;
  for (auto _ : state) {
    const auto& wi = f.instances[i++ % f.instances.size()];
    benchmark::DoNotOptimize(recost.Recost(f.cached, wi.svector));
  }
}
BENCHMARK(BM_Recost)->Arg(2)->Arg(4)->Arg(8);

void BM_SVectorComputation(benchmark::State& state) {
  Fixture& f = Fixture::Get(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const auto& wi = f.instances[i++ % f.instances.size()];
    benchmark::DoNotOptimize(ComputeSelectivityVector(f.rd2.db, wi.instance));
  }
}
BENCHMARK(BM_SVectorComputation)->Arg(2)->Arg(4)->Arg(8);

/// Not a timing loop: reports the memo-pruning ratio as a counter
/// (Appendix B's ">= 70% pruned").
void BM_ShrunkenMemoPruning(benchmark::State& state) {
  Fixture& f = Fixture::Get(static_cast<int>(state.range(0)));
  double ratio = 0.0;
  for (auto _ : state) {
    CachedPlan c = f.cached;
    ratio = c.PruningRatio();
    benchmark::DoNotOptimize(ratio);
  }
  state.counters["pruning_ratio"] = ratio;
  state.counters["memo_exprs"] =
      static_cast<double>(f.cached.memo_physical_exprs);
  state.counters["plan_nodes"] = static_cast<double>(f.cached.retained_nodes);
}
BENCHMARK(BM_ShrunkenMemoPruning)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();

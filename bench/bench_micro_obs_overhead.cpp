// Micro-benchmark for the observability layer: getPlan latency with the
// tracer/metrics sinks detached (the shipping default — overhead must be a
// few null-pointer checks, < 5% vs pre-obs behavior), fully attached, and
// the raw cost of the obs primitives themselves (Tracer::Record, counter
// increments, histogram records).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "obs/metrics_registry.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "pqo/scr.h"
#include "workload/instance_gen.h"
#include "workload/runner.h"
#include "workload/schemas.h"
#include "workload/templates.h"

namespace {

using namespace scrpqo;

struct Fixture {
  BenchmarkDb db;
  BoundTemplate bt;
  std::unique_ptr<Optimizer> optimizer;
  std::vector<WorkloadInstance> instances;
  Oracle oracle;

  Fixture() {
    SchemaScale scale;
    db = BuildTpchSkewed(scale);
    bt = BuildExample2dTemplate(db);
    optimizer = std::make_unique<Optimizer>(&db.db);
    InstanceGenOptions gen;
    gen.m = 256;
    instances = GenerateInstances(bt, gen);
    oracle = Oracle::Build(*optimizer, instances);
  }

  static Fixture& Get() {
    static Fixture fixture;
    return fixture;
  }

  /// A warmed SCR cache plus an oracle-backed engine, so the timed loop
  /// exercises the steady-state getPlan path (mostly check hits).
  struct Warm {
    std::unique_ptr<Scr> scr;
    std::unique_ptr<EngineContext> engine;
  };

  Warm MakeWarm(const ObsHooks* hooks) {
    Warm w;
    w.scr = std::make_unique<Scr>(ScrOptions{});
    if (hooks != nullptr) w.scr->SetObs(*hooks);
    w.engine = std::make_unique<EngineContext>(&db.db, optimizer.get());
    w.engine->SetOracle(
        [this](const WorkloadInstance& wi) { return oracle.result(wi.id); });
    for (const WorkloadInstance& wi : instances) {
      w.scr->OnInstance(wi, w.engine.get());
    }
    return w;
  }
};

void RunGetPlanLoop(benchmark::State& state, const ObsHooks* hooks) {
  Fixture& f = Fixture::Get();
  Fixture::Warm w = f.MakeWarm(hooks);
  size_t i = 0;
  for (auto _ : state) {
    const WorkloadInstance& wi = f.instances[i++ % f.instances.size()];
    PlanChoice c = w.scr->OnInstance(wi, w.engine.get());
    benchmark::DoNotOptimize(c.plan);
  }
}

void BM_GetPlan_ObsDisabled(benchmark::State& state) {
  RunGetPlanLoop(state, nullptr);
}
BENCHMARK(BM_GetPlan_ObsDisabled);

void BM_GetPlan_MetricsOnly(benchmark::State& state) {
  MetricsRegistry registry;
  ObsHooks hooks{nullptr, &registry};
  RunGetPlanLoop(state, &hooks);
}
BENCHMARK(BM_GetPlan_MetricsOnly);

void BM_GetPlan_TracerAndMetrics(benchmark::State& state) {
  Tracer tracer(1 << 16);
  MetricsRegistry registry;
  ObsHooks hooks{&tracer, &registry};
  RunGetPlanLoop(state, &hooks);
}
BENCHMARK(BM_GetPlan_TracerAndMetrics);

void BM_TracerRecord(benchmark::State& state) {
  Tracer tracer(1 << 16);
  DecisionEvent ev;
  ev.technique = "SCR2";
  ev.outcome = DecisionOutcome::kSelCheckHit;
  for (auto _ : state) {
    tracer.Record(ev);
  }
  state.counters["recorded"] =
      static_cast<double>(tracer.total_recorded());
}
BENCHMARK(BM_TracerRecord);

void BM_CounterIncrement(benchmark::State& state) {
  MetricsRegistry registry;
  Counter* c = registry.counter("bench.counter");
  for (auto _ : state) {
    c->Increment();
  }
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramRecord(benchmark::State& state) {
  MetricsRegistry registry;
  LogHistogram* h = registry.histogram("bench.histogram");
  double v = 1.0;
  for (auto _ : state) {
    h->Record(v);
    v = v < 1e6 ? v * 1.1 : 1.0;
  }
  benchmark::DoNotOptimize(h->count());
}
BENCHMARK(BM_HistogramRecord);

void BM_ScopedTimerDisabled(benchmark::State& state) {
  for (auto _ : state) {
    ScopedTimer timer(nullptr);
    benchmark::DoNotOptimize(&timer);
  }
}
BENCHMARK(BM_ScopedTimerDisabled);

}  // namespace

BENCHMARK_MAIN();

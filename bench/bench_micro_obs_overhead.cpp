// Observability capture-path overhead gate (perf-smoke).
//
// Times the steady-state SCR getPlan loop (warm cache, oracle-backed
// optimizer, ~all check hits) under three capture configurations:
//   - disabled:  no tracer, no metrics — the shipping default; cost must
//                stay a few null-pointer checks
//   - mutex:     legacy single-ring Tracer + MetricsRegistry (every
//                Record takes one global lock)
//   - spsc:      RingTracer (per-thread SPSC rings + exporter thread) +
//                MetricsRegistry — the serving default
// and the raw Record primitive single-threaded and with 4 contending
// producers, where the lock-free rings are supposed to earn their keep.
//
// Emits machine-readable BENCH_obs.json (baseline kept in
// bench/baselines/). The CI gate is relative, not absolute: the SPSC
// enabled-path overhead over disabled must not exceed the legacy mutexed
// overhead (--max-overhead-ratio=1.0), so the serving default can never
// regress below the fallback it replaced.
//
// Flags:
//   --out=PATH                output JSON path (default BENCH_obs.json)
//   --max-overhead-ratio=R    exit non-zero unless
//                             spsc_overhead <= R * mutex_overhead + 50ns
//                             (tolerance absorbs shared-runner noise on
//                             overheads that are deltas of ~microsecond
//                             measurements)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/ring_tracer.h"
#include "obs/trace.h"
#include "pqo/scr.h"
#include "workload/instance_gen.h"
#include "workload/runner.h"
#include "workload/schemas.h"
#include "workload/templates.h"

namespace {

using namespace scrpqo;

/// ns per op of `fn`: self-calibrating batch, minimum over 16 windows
/// (same noise-robust statistic as bench_micro_recost_flat).
template <typename Fn>
double TimeNsPerOp(Fn&& fn) {
  fn();  // warm caches / fault in pages
  int64_t iters = 8;
  double ns = 0.0;
  for (;;) {
    auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    auto t1 = std::chrono::steady_clock::now();
    ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (ns >= 1e7 || iters >= (int64_t{1} << 30)) break;
    iters *= 2;
  }
  double best = ns / static_cast<double>(iters);
  for (int rep = 0; rep < 15; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    auto t1 = std::chrono::steady_clock::now();
    ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    best = std::min(best, ns / static_cast<double>(iters));
  }
  return best;
}

struct Fixture {
  BenchmarkDb db;
  BoundTemplate bt;
  std::unique_ptr<Optimizer> optimizer;
  std::vector<WorkloadInstance> instances;
  Oracle oracle;

  Fixture() {
    SchemaScale scale;
    db = BuildTpchSkewed(scale);
    bt = BuildExample2dTemplate(db);
    optimizer = std::make_unique<Optimizer>(&db.db);
    InstanceGenOptions gen;
    gen.m = 256;
    instances = GenerateInstances(bt, gen);
    oracle = Oracle::Build(*optimizer, instances);
  }

  /// Steady-state getPlan ns/op under `hooks` (null = obs disabled): warm
  /// the cache on every instance first, then time replaying the same
  /// instance set (all reuse decisions, no cache growth).
  double GetPlanNs(const ObsHooks* hooks) {
    Scr scr((ScrOptions()));
    if (hooks != nullptr) scr.SetObs(*hooks);
    EngineContext engine(&db.db, optimizer.get());
    engine.SetOracle(
        [this](const WorkloadInstance& wi) { return oracle.result(wi.id); });
    for (const WorkloadInstance& wi : instances) {
      scr.OnInstance(wi, &engine);
    }
    const double n = static_cast<double>(instances.size());
    return TimeNsPerOp([&] {
             for (const WorkloadInstance& wi : instances) {
               PlanChoice c = scr.OnInstance(wi, &engine);
               if (c.plan == nullptr) std::abort();
             }
           }) /
           n;
  }
};

DecisionEvent BenchEvent() {
  DecisionEvent ev;
  ev.technique = "SCR2";
  ev.outcome = DecisionOutcome::kSelCheckHit;
  ev.g = 1.1;
  ev.l = 1.1;
  ev.subopt = 1.05;
  ev.lambda = 2.0;
  return ev;
}

/// Record ns/op with `threads` producers hammering one tracer. Wall-clock
/// over all threads divided by total events, best of 8 rounds.
double ContendedRecordNs(Tracer& tracer, int threads) {
  constexpr int kPerThread = 20000;
  double best = 1e18;
  for (int round = 0; round < 8; ++round) {
    std::vector<std::thread> workers;
    auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&tracer] {
        DecisionEvent ev = BenchEvent();
        for (int i = 0; i < kPerThread; ++i) tracer.Record(ev);
      });
    }
    for (std::thread& w : workers) w.join();
    auto t1 = std::chrono::steady_clock::now();
    double ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                static_cast<double>(threads * kPerThread);
    best = std::min(best, ns);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_obs.json";
  double max_overhead_ratio = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--max-overhead-ratio=", 21) == 0) {
      max_overhead_ratio = std::atof(argv[i] + 21);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  Fixture f;

  const double disabled_ns = f.GetPlanNs(nullptr);

  // The gated quantity is the *serving-thread* cost of capture — the
  // work each tracer leaves on the getPlan critical path. For the SPSC
  // config: on a multi-core host the exporter drains on its own core and
  // the timed loop measures exactly that; on a single-core host the
  // exporter time-slices into the loop, so we space the wakes out (50ms
  // against ~10ms timed windows) and size the ring to absorb a full
  // interval without dropping. The min-of-16-windows statistic then
  // lands on wake-free windows and measures the same producer-side
  // quantity on any host; exporter-inclusive cost is visible in the
  // contended Record numbers below, which keep the default drain
  // cadence. The two configs are measured interleaved (min over rounds)
  // so slow cross-run drift — CPU frequency, noisy neighbours — shifts
  // both sides of the gate instead of whichever config ran second.
  double mutex_ns = 1e18;
  double spsc_ns = 1e18;
  for (int round = 0; round < 3; ++round) {
    {
      Tracer tracer(1 << 16);
      MetricsRegistry registry;
      ObsHooks hooks{&tracer, &registry};
      mutex_ns = std::min(mutex_ns, f.GetPlanNs(&hooks));
    }
    {
      RingTracer::Options opts;
      opts.ring_capacity = 1 << 17;
      opts.window_capacity = 1 << 16;
      opts.drain_interval_micros = 50000;
      RingTracer tracer(opts);
      MetricsRegistry registry;
      ObsHooks hooks{&tracer, &registry};
      spsc_ns = std::min(spsc_ns, f.GetPlanNs(&hooks));
    }
  }

  const double mutex_overhead = mutex_ns - disabled_ns;
  const double spsc_overhead = spsc_ns - disabled_ns;
  std::printf("getPlan: disabled=%.1fns mutex=%.1fns (+%.1f) "
              "spsc=%.1fns (+%.1f)\n",
              disabled_ns, mutex_ns, mutex_overhead, spsc_ns,
              spsc_overhead);

  double record_mutex_1t, record_spsc_1t, record_mutex_4t, record_spsc_4t;
  {
    Tracer tracer(1 << 16);
    record_mutex_1t = ContendedRecordNs(tracer, 1);
    record_mutex_4t = ContendedRecordNs(tracer, 4);
  }
  {
    RingTracer tracer;
    record_spsc_1t = ContendedRecordNs(tracer, 1);
    record_spsc_4t = ContendedRecordNs(tracer, 4);
  }
  std::printf("Record 1 thread : mutex=%.1fns spsc=%.1fns\n",
              record_mutex_1t, record_spsc_1t);
  std::printf("Record 4 threads: mutex=%.1fns spsc=%.1fns (per event)\n",
              record_mutex_4t, record_spsc_4t);

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"micro_obs_overhead\",\n"
               "  \"get_plan\": {\"disabled_ns\": %.2f, \"mutex_ns\": %.2f, "
               "\"spsc_ns\": %.2f, \"mutex_overhead_ns\": %.2f, "
               "\"spsc_overhead_ns\": %.2f},\n"
               "  \"record_1thread\": {\"mutex_ns\": %.2f, \"spsc_ns\": "
               "%.2f},\n"
               "  \"record_4threads\": {\"mutex_ns\": %.2f, \"spsc_ns\": "
               "%.2f}\n}\n",
               disabled_ns, mutex_ns, spsc_ns, mutex_overhead,
               spsc_overhead, record_mutex_1t, record_spsc_1t,
               record_mutex_4t, record_spsc_4t);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (max_overhead_ratio > 0.0) {
    // 50ns of absolute slack (~6% of the overheads being compared): the
    // overheads are deltas of ~microsecond measurements on shared
    // runners; without a floor, two noise samples could fail a
    // technically-true gate.
    const double budget = max_overhead_ratio * std::max(mutex_overhead, 0.0) +
                          50.0;
    if (spsc_overhead > budget) {
      std::fprintf(stderr,
                   "FAIL: SPSC enabled-path overhead %.1fns exceeds "
                   "budget %.1fns (%.2fx mutexed overhead %.1fns + 50ns)\n",
                   spsc_overhead, budget, max_overhead_ratio,
                   mutex_overhead);
      return 1;
    }
    std::printf("gate OK: spsc overhead %.1fns <= budget %.1fns\n",
                spsc_overhead, budget);
  }
  return 0;
}

// Cost-model calibration probe: optimizer-estimated cost vs measured
// execution wall time over a grid of instances. The paper evaluates with
// optimizer-estimated costs (Section 2.1) precisely because execution times
// are noisy; this harness shows the two are nonetheless strongly rank-
// correlated in our engine, i.e. the estimated-cost currency is meaningful.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/env.h"
#include "executor/executor.h"
#include "optimizer/optimizer.h"
#include "workload/instance_gen.h"
#include "workload/schemas.h"
#include "workload/templates.h"

using namespace scrpqo;

namespace {

double PearsonR(const std::vector<double>& x, const std::vector<double>& y) {
  double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  double cov = sxy - sx * sy / n;
  double vx = sxx - sx * sx / n;
  double vy = syy - sy * sy / n;
  return cov / std::sqrt(vx * vy);
}

std::vector<double> Ranks(const std::vector<double>& v) {
  std::vector<size_t> idx(v.size());
  for (size_t i = 0; i < v.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&v](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(v.size());
  for (size_t r = 0; r < idx.size(); ++r) {
    ranks[idx[r]] = static_cast<double>(r);
  }
  return ranks;
}

}  // namespace

int main() {
  std::printf("== Cost-model calibration: estimated cost vs wall time ==\n");
  SchemaScale scale;
  scale.factor = EnvDouble("SCRPQO_SCALE", 0.3);
  scale.materialize_rows = true;
  BenchmarkDb tpch = BuildTpchSkewed(scale);
  BoundTemplate bt = BuildExample2dTemplate(tpch);
  Optimizer optimizer(&tpch.db);

  InstanceGenOptions gen;
  gen.m = static_cast<int>(EnvInt64("SCRPQO_EXEC_M", 120));
  auto instances = GenerateInstances(bt, gen);

  std::vector<double> est_costs, times_ms;
  for (const auto& wi : instances) {
    OptimizationResult r =
        optimizer.OptimizeWithSVector(wi.instance, wi.svector);
    ExecutionResult exec = ExecutePlan(tpch.db, wi.instance, *r.plan);
    est_costs.push_back(r.cost);
    times_ms.push_back(exec.elapsed_seconds * 1000.0);
  }

  double pearson = PearsonR(est_costs, times_ms);
  double spearman = PearsonR(Ranks(est_costs), Ranks(times_ms));
  std::printf("instances              : %zu\n", instances.size());
  std::printf("pearson  r (cost,time) : %.3f\n", pearson);
  std::printf("spearman r (cost,time) : %.3f\n", spearman);
  std::printf("cost range             : %.1f .. %.1f\n",
              *std::min_element(est_costs.begin(), est_costs.end()),
              *std::max_element(est_costs.begin(), est_costs.end()));
  std::printf("time range             : %.2f .. %.2f ms\n",
              *std::min_element(times_ms.begin(), times_ms.end()),
              *std::max_element(times_ms.begin(), times_ms.end()));
  std::printf("(a high rank correlation justifies evaluating PQO quality in "
              "optimizer\ncost units, as the paper does in Section 2.1.)\n");
  return 0;
}

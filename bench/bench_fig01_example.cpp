// Figure 1 / Section 3: the motivating example. A 2-d query processes a
// short, hand-ordered workload; we report per-technique optimizer calls and
// plan picks. Expected shape: SCR needs the fewest optimizer calls (paper:
// 6 vs 12 for PCM and 8 for the best heuristic on their 13 instances) while
// never picking a badly sub-optimal plan.
#include "bench/bench_util.h"
#include "workload/instance_gen.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 1: example workload walk-through ==\n");
  SchemaScale scale;
  BenchmarkDb tpch = BuildTpchSkewed(scale);
  BoundTemplate bt = BuildExample2dTemplate(tpch);
  Optimizer optimizer(&tpch.db);

  // Thirteen instances spread over the 2-d selectivity space in an order
  // that mixes revisits and jumps (mirroring the figure's layout).
  std::vector<std::pair<double, double>> points = {
      {0.05, 0.10}, {0.60, 0.70}, {0.07, 0.12}, {0.62, 0.72}, {0.05, 0.14},
      {0.06, 0.09}, {0.30, 0.10}, {0.33, 0.12}, {0.90, 0.85}, {0.06, 0.11},
      {0.88, 0.82}, {0.32, 0.11}, {0.08, 0.55},
  };
  std::vector<WorkloadInstance> instances;
  for (size_t i = 0; i < points.size(); ++i) {
    WorkloadInstance wi;
    wi.id = static_cast<int>(i);
    wi.instance = InstanceForSelectivities(
        tpch.db, *bt.tmpl, {points[i].first, points[i].second});
    wi.svector = ComputeSelectivityVector(tpch.db, wi.instance);
    instances.push_back(std::move(wi));
  }
  Oracle oracle = Oracle::Build(optimizer, instances);
  std::vector<int> perm(instances.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);

  PrintTableHeader({"technique", "numOpt", "numPlans", "MSO", "TC"});
  for (const auto& nf : AllTechniques(2.0)) {
    auto technique = nf.factory();
    RunSequenceOptions ropts;
    ropts.ordering_name = "figure1";
    SequenceMetrics m = RunSequence(optimizer, instances, perm, oracle,
                                    technique.get(), ropts);
    PrintTableRow({nf.name, std::to_string(m.num_opt),
                   std::to_string(m.num_plans), FormatDouble(m.mso, 2),
                   FormatDouble(m.total_cost_ratio, 2)});
  }

  // Per-instance decision trace for SCR2 (the paper narrates q1..q13).
  std::printf("\nSCR2 decision trace:\n");
  Scr scr(ScrOptions{.lambda = 2.0});
  EngineContext engine(&tpch.db, &optimizer);
  engine.SetOracle(
      [&oracle](const WorkloadInstance& wi) { return oracle.result(wi.id); });
  for (size_t i = 0; i < instances.size(); ++i) {
    PlanChoice c = scr.OnInstance(instances[i], &engine);
    const char* how = c.optimized
                          ? "OPTIMIZE"
                          : (c.recost_calls_in_get_plan > 0 ? "cost check"
                                                            : "sel check");
    std::printf("  q%-2zu sv=(%.3f, %.3f)  -> %-10s plan=%016llx\n", i + 1,
                instances[i].svector[0], instances[i].svector[1], how,
                static_cast<unsigned long long>(c.plan->signature));
  }
  return 0;
}

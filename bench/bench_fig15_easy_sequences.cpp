// Figure 15: sequences where Optimize-Once already achieves MSO < 2 ("easy"
// workloads). A good online technique should recognize these and avoid
// extra work: the paper reports SCR averaging < 2 plans and ~1.7% optimizer
// calls there while other techniques still store tens of plans.
#include "bench/bench_util.h"

#include <set>

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 15: behaviour on sequences where OptOnce MSO < 2 ==\n");
  EvaluationSuite suite = MakeSuite();

  // Identify the easy sequences with OptOnce.
  auto once_seqs =
      suite.RunAll([] { return std::make_unique<OptOnce>(); });
  std::set<std::pair<std::string, std::string>> easy;
  for (const auto& s : once_seqs) {
    if (s.mso < 2.0) easy.insert({s.template_name, s.ordering});
  }
  std::printf("easy sequences: %zu of %zu\n", easy.size(), once_seqs.size());
  if (easy.empty()) {
    std::printf("no easy sequences at this scale; nothing to compare\n");
    return 0;
  }

  PrintTableHeader({"technique", "avg plans", "avg numOpt %"});
  for (const auto& nf : AllTechniques(2.0)) {
    auto seqs = suite.RunAll(nf.factory);
    std::vector<double> plans, numopt;
    for (const auto& s : seqs) {
      if (easy.count({s.template_name, s.ordering}) > 0) {
        plans.push_back(static_cast<double>(s.num_plans));
        numopt.push_back(s.NumOptPercent());
      }
    }
    PrintTableRow({nf.name, FormatDouble(Mean(plans), 1),
                   FormatDouble(Mean(numopt), 1)});
  }
  return 0;
}

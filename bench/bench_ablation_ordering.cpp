// Ablation: cost-check candidate ordering (Section 6.2). With the Recost
// budget capped per getPlan, the order in which stored instances are tried
// decides how often a reusable plan is found before the cap. Expected
// shape: ascending-GL (the paper's heuristic) needs the fewest Recost calls
// for the same reuse rate; insertion order wastes calls on poor candidates.
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Ablation: cost-check candidate ordering (lambda = 1.2, "
              "cap 4) ==\n");
  EvaluationSuite suite = MakeSuite();

  struct Variant {
    std::string name;
    CostCheckOrder order;
  };
  std::vector<Variant> variants = {
      {"ascending GL (paper)", CostCheckOrder::kAscendingGl},
      {"descending region area", CostCheckOrder::kDescendingRegionArea},
      {"descending usage", CostCheckOrder::kDescendingUsage},
      {"insertion order", CostCheckOrder::kInsertionOrder},
  };

  PrintTableHeader({"ordering", "numOpt% avg", "recosts avg", "TC avg"});
  for (const auto& v : variants) {
    auto factory = [&v] {
      ScrOptions o;
      o.lambda = 1.2;  // tight bound makes the cost check earn its keep
      o.max_cost_check_candidates = 4;
      o.cost_check_order = v.order;
      return std::make_unique<Scr>(o);
    };
    auto seqs = suite.RunAll(factory);
    std::vector<double> recosts;
    for (const auto& s : seqs) {
      recosts.push_back(static_cast<double>(s.num_recost_calls));
    }
    PrintTableRow({v.name, FormatDouble(Mean(ExtractNumOptPct(seqs)), 1),
                   FormatDouble(Mean(recosts), 0),
                   FormatDouble(Mean(ExtractTcr(seqs)), 3)});
  }
  return 0;
}

// Figure 18 (Appendix H.3): running numOpt % for a 10-dimensional query as
// the sequence grows to 5000 instances. Expected shape: SCR2 tracks the
// best heuristic (Ellipse) downward while PCM2 stays much higher.
#include "bench/bench_util.h"
#include "common/env.h"
#include "workload/instance_gen.h"

using namespace scrpqo;
using namespace scrpqo::bench;

namespace {

/// Runs a technique over one long sequence, reporting cumulative numOpt %
/// at checkpoints.
std::vector<double> RunningNumOpt(const Optimizer& optimizer,
                                  const std::vector<WorkloadInstance>& wis,
                                  const std::vector<int>& perm,
                                  const Oracle& oracle,
                                  PqoTechnique* technique,
                                  const std::vector<int>& checkpoints) {
  EngineContext engine(&optimizer.db(), &optimizer);
  engine.SetOracle(
      [&oracle](const WorkloadInstance& wi) { return oracle.result(wi.id); });
  std::vector<double> out;
  size_t next_cp = 0;
  for (size_t i = 0; i < perm.size(); ++i) {
    technique->OnInstance(wis[static_cast<size_t>(perm[i])], &engine);
    if (next_cp < checkpoints.size() &&
        static_cast<int>(i + 1) == checkpoints[next_cp]) {
      out.push_back(100.0 *
                    static_cast<double>(engine.num_optimizer_calls()) /
                    static_cast<double>(i + 1));
      ++next_cp;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Figure 18: 10-d query, running numOpt %% ==\n");
  SchemaScale scale;
  BenchmarkDb rd2 = BuildRd2(scale);
  BoundTemplate bt = BuildRd2TemplateWithDimensions(rd2, 10);
  Optimizer optimizer(&rd2.db);

  int total = static_cast<int>(EnvInt64("SCRPQO_MAX_M", 5000));
  InstanceGenOptions gen;
  gen.m = total;
  auto instances = GenerateInstances(bt, gen);
  Oracle oracle = Oracle::Build(optimizer, instances);
  std::vector<int> perm =
      MakeOrdering(OrderingKind::kRandom, oracle.OrderingInfo(), 3);

  std::vector<int> checkpoints;
  for (int c = total / 5; c <= total; c += total / 5) checkpoints.push_back(c);

  std::vector<NamedFactory> techniques = {
      PcmFactory(2.0),
      {"Ellipse(0.9)",
       [] { return std::make_unique<Ellipse>(EllipseOptions{.delta = 0.9}); },
       0.0},
      ScrFactory(2.0)};

  std::printf("%-14s", "m");
  for (int c : checkpoints) std::printf("%-10d", c);
  std::printf("\n");
  for (const auto& nf : techniques) {
    auto technique = nf.factory();
    auto series = RunningNumOpt(optimizer, instances, perm, oracle,
                                technique.get(), checkpoints);
    std::printf("%-14s", nf.name.c_str());
    for (double v : series) std::printf("%-10s", FormatDouble(v, 1).c_str());
    std::printf("\n");
  }
  return 0;
}

// Ablation: contribution of each SCR check (DESIGN.md design-choice
// ablations). Variants:
//   S--   selectivity check only (no cost check, store every plan)
//   SC-   selectivity + cost check (store every plan)
//   S-R   selectivity + redundancy check (no cost check)
//   SCR   the full technique (paper configuration, lambda_r = sqrt(lambda))
// Expected shape: the cost check buys most of the optimizer-call savings
// beyond the selectivity region; the redundancy check buys the plan-count
// reduction at nearly no quality cost.
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Ablation: SCR checks (lambda = 2) ==\n");
  EvaluationSuite suite = MakeSuite();

  struct Variant {
    std::string name;
    bool cost_check;
    double lambda_r;  // 1.0 = store every new plan
  };
  std::vector<Variant> variants = {
      {"S--  (sel only, store all)", false, 1.0},
      {"SC-  (sel+cost, store all)", true, 1.0},
      {"S-R  (sel+redundancy)", false, -1.0},
      {"SCR  (full technique)", true, -1.0},
  };

  PrintTableHeader({"variant", "numOpt% avg", "plans avg", "recosts avg",
                    "TC avg", "MSO p95"});
  for (const auto& v : variants) {
    auto factory = [&v] {
      ScrOptions o;
      o.lambda = 2.0;
      o.enable_cost_check = v.cost_check;
      o.lambda_r = v.lambda_r;
      return std::make_unique<Scr>(o);
    };
    auto seqs = suite.RunAll(factory);
    std::vector<double> recosts;
    for (const auto& s : seqs) {
      recosts.push_back(static_cast<double>(s.num_recost_calls));
    }
    PrintTableRow({v.name, FormatDouble(Mean(ExtractNumOptPct(seqs)), 1),
                   FormatDouble(Mean(ExtractNumPlans(seqs)), 1),
                   FormatDouble(Mean(recosts), 0),
                   FormatDouble(Mean(ExtractTcr(seqs)), 3),
                   FormatDouble(Percentile(ExtractMso(seqs), 95), 2)});
  }
  return 0;
}

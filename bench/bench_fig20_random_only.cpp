// Figure 20 (Appendix H.5): numOpt % restricted to random orderings only.
// Expected shape: most techniques improve relative to the all-orderings
// number (adversarial orderings hurt them), while SCR's performance is
// essentially ordering-insensitive.
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 20: numOpt %% (random orderings only) ==\n");
  SuiteConfig cfg = SuiteConfig::FromEnv();
  cfg.orderings = {OrderingKind::kRandom};
  std::printf("# suite: %d templates, random ordering only, m=%d\n",
              cfg.num_templates, cfg.m);
  EvaluationSuite suite(cfg);

  PrintTableHeader({"technique", "avg %", "p50 %", "p95 %", "max %"});
  for (const auto& nf : AllTechniques(2.0)) {
    auto seqs = suite.RunAll(nf.factory);
    DistSummary s = Summarize(ExtractNumOptPct(seqs));
    PrintTableRow({nf.name, FormatDouble(s.avg, 1), FormatDouble(s.p50, 1),
                   FormatDouble(s.p95, 1), FormatDouble(s.max, 1)});
  }
  return 0;
}

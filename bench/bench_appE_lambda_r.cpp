// Appendix E: choosing the redundancy threshold lambda_r. The paper's
// sample experiment runs 4000 instances of TPC-DS Q18 at lambda = 1.1 and
// reports plans retained / Recost calls per getPlan / TotalCostRatio as
// lambda_r moves through 1, 1.01, sqrt(lambda) and beyond; sqrt(lambda) is
// the knee. We run the Q18 analog plus a suite-wide sweep.
#include <cmath>

#include "bench/bench_util.h"
#include "common/env.h"
#include "workload/instance_gen.h"
#include "workload/named_templates.h"

using namespace scrpqo;
using namespace scrpqo::bench;

namespace {

struct Case {
  std::string name;
  double lambda_r;
};

std::vector<Case> Cases(double lambda) {
  return {{"1.0 (store all)", 1.0},
          {"1.01", 1.01},
          {"sqrt(lambda)", std::sqrt(lambda)},
          {"lambda", lambda}};
}

}  // namespace

int main() {
  std::printf("== Appendix E: lambda_r sweep at lambda = 1.1 ==\n");
  const double lambda = 1.1;

  // Part 1: the paper's sample experiment on the Q18 analog.
  {
    SchemaScale scale;
    std::vector<BenchmarkDb> dbs = BuildAllDatabases(scale);
    BoundTemplate bt = BuildNamedTemplate(dbs, "TPCDS_Q18A");
    Optimizer optimizer(&bt.db->db);
    InstanceGenOptions gen;
    gen.m = static_cast<int>(EnvInt64("SCRPQO_Q18_M", 4000));
    auto instances = GenerateInstances(bt, gen);
    Oracle oracle = Oracle::Build(optimizer, instances);
    auto perm =
        MakeOrdering(OrderingKind::kRandom, oracle.OrderingInfo(), 1);

    std::printf("\nTPCDS_Q18A, %zu instances (paper Q18: plans 77 -> 14 -> "
                "5, recost/getPlan 8 -> 5 -> 3)\n",
                instances.size());
    PrintTableHeader({"lambda_r", "plans", "max recost/getPlan", "numOpt",
                      "TC"});
    for (const auto& c : Cases(lambda)) {
      Scr scr(ScrOptions{.lambda = lambda, .lambda_r = c.lambda_r});
      RunSequenceOptions ropts;
      ropts.ordering_name = "random";
      SequenceMetrics m =
          RunSequence(optimizer, instances, perm, oracle, &scr, ropts);
      PrintTableRow({c.name, std::to_string(m.num_plans),
                     std::to_string(m.max_recost_per_get_plan),
                     std::to_string(m.num_opt),
                     FormatDouble(m.total_cost_ratio, 3)});
    }
  }

  // Part 2: suite-wide sweep.
  EvaluationSuite suite = MakeSuite();
  std::printf("\nsuite-wide averages\n");
  PrintTableHeader({"lambda_r", "avg plans", "avg numOpt %", "avg TC"});
  for (const auto& c : Cases(lambda)) {
    std::vector<double> plans, numopt, tcr;
    for (const auto& tw : suite.workloads()) {
      auto seqs = suite.RunTemplate(tw, [&] {
        return std::make_unique<Scr>(
            ScrOptions{.lambda = lambda, .lambda_r = c.lambda_r});
      });
      for (const auto& s : seqs) {
        plans.push_back(static_cast<double>(s.num_plans));
        numopt.push_back(s.NumOptPercent());
        tcr.push_back(s.total_cost_ratio);
      }
    }
    PrintTableRow({c.name, FormatDouble(Mean(plans), 1),
                   FormatDouble(Mean(numopt), 1),
                   FormatDouble(Mean(tcr), 3)});
  }
  return 0;
}

// Figure 19 (Appendix H.4): SCR numOpt % under hard plan-cache budgets
// k in {unlimited, 10, 5, 2}. Expected shape: budgets of 10 and 5 cost
// little extra optimization (most sequences want fewer plans anyway); k = 2
// forces evict/re-optimize cycles on plan-rich sequences and numOpt climbs.
// We sweep both lambda = 2 (the paper's setting) and lambda = 1.1 (where
// more plans are wanted, so budgets bind earlier at reduced m).
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 19: SCR numOpt %% vs plan budget k ==\n");
  EvaluationSuite suite = MakeSuite();

  for (double lambda : {2.0, 1.1}) {
    std::printf("\nlambda = %.1f\n", lambda);
    PrintTableHeader({"budget k", "avg %", "p50 %", "p95 %", "max %",
                      "plans p95"});
    for (int k : {0, 10, 5, 2}) {
      auto factory = [k, lambda] {
        return std::make_unique<Scr>(
            ScrOptions{.lambda = lambda, .plan_budget = k});
      };
      auto seqs = suite.RunAll(factory);
      DistSummary s = Summarize(ExtractNumOptPct(seqs));
      DistSummary plans = Summarize(ExtractNumPlans(seqs));
      PrintTableRow({k == 0 ? "unlimited" : std::to_string(k),
                     FormatDouble(s.avg, 1), FormatDouble(s.p50, 1),
                     FormatDouble(s.p95, 1), FormatDouble(s.max, 1),
                     FormatDouble(plans.p95, 0)});
    }
  }
  return 0;
}

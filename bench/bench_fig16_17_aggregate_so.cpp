// Figures 16 and 17 (Appendix H.2): aggregate MSO and TotalCostRatio per
// technique (average + 95th percentile). Expected shape: heuristics show an
// order-of-magnitude worse average than SCR2 due to a heavy tail; SCR2's
// average TC sits near 1.1; PCM2's TC is noticeably above SCR2's.
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figures 16/17: aggregate MSO and TotalCostRatio ==\n");
  EvaluationSuite suite = MakeSuite();

  PrintTableHeader({"technique", "MSO avg", "MSO p95", "TC avg", "TC p95"});
  for (const auto& nf : AllTechniques(2.0)) {
    auto seqs = suite.RunAll(nf.factory);
    DistSummary mso = Summarize(ExtractMso(seqs));
    DistSummary tcr = Summarize(ExtractTcr(seqs));
    PrintTableRow({nf.name, FormatDouble(mso.avg, 2),
                   FormatDouble(mso.p95, 2), FormatDouble(tcr.avg, 2),
                   FormatDouble(tcr.p95, 2)});
  }
  return 0;
}

// Appendix F: redundancy check for plans already in the cache. After
// running SCR in store-everything mode (lambda_r = 1) over half a workload,
// DropRedundantPlans garbage-collects plans whose instances are all
// lambda-optimally covered by another cached plan; the second half of the
// workload then runs against the compacted cache. Expected shape: a
// substantial fraction of plans drops, quality stays within the bound, and
// the optimizer-call rate on the second half barely moves.
#include "bench/bench_util.h"
#include "workload/instance_gen.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Appendix F: dropping redundant plans mid-stream ==\n");
  SchemaScale scale;
  BenchmarkDb rd2 = BuildRd2(scale);
  BoundTemplate bt = BuildRd2TemplateWithDimensions(rd2, 4);
  Optimizer optimizer(&rd2.db);

  InstanceGenOptions gen;
  gen.m = 2000;
  auto instances = GenerateInstances(bt, gen);
  Oracle oracle = Oracle::Build(optimizer, instances);
  auto perm = MakeOrdering(OrderingKind::kRandom, oracle.OrderingInfo(), 3);

  PrintTableHeader({"variant", "plans@mid", "plans after GC", "2nd-half opt%",
                    "2nd-half viol"});
  for (bool run_gc : {false, true}) {
    Scr scr(ScrOptions{.lambda = 2.0, .lambda_r = 1.0});  // store everything
    EngineContext engine(&rd2.db, &optimizer);
    engine.SetOracle([&oracle](const WorkloadInstance& wi) {
      return oracle.result(wi.id);
    });
    size_t half = perm.size() / 2;
    for (size_t i = 0; i < half; ++i) {
      scr.OnInstance(instances[static_cast<size_t>(perm[i])], &engine);
    }
    int64_t plans_mid = scr.NumPlansCached();
    if (run_gc) scr.DropRedundantPlans(&engine);
    int64_t plans_gc = scr.NumPlansCached();

    int64_t opt_before = engine.num_optimizer_calls();
    int violations = 0;
    for (size_t i = half; i < perm.size(); ++i) {
      const auto& wi = instances[static_cast<size_t>(perm[i])];
      PlanChoice c = scr.OnInstance(wi, &engine);
      double so = engine.RecostUncharged(*c.plan, wi.svector) /
                  oracle.opt_cost(wi.id);
      if (so > 2.0 * 1.001) ++violations;
    }
    double second_half_pct =
        100.0 *
        static_cast<double>(engine.num_optimizer_calls() - opt_before) /
        static_cast<double>(perm.size() - half);
    PrintTableRow({run_gc ? "with GC" : "no GC", std::to_string(plans_mid),
                   std::to_string(plans_gc),
                   FormatDouble(second_half_pct, 1),
                   std::to_string(violations)});
  }
  return 0;
}

// Table 3: the execution experiment. 500 instances of a DS-like query are
// actually executed against materialized data; optimization time, execution
// time, total time and plans cached are reported per technique. Expected
// shape: OptAlways pays maximal optimization time, OptOnce suffers
// sub-optimal executions, SCR1.1 wins on total time while retaining an
// order of magnitude fewer plans.
#include <chrono>

#include "bench/bench_util.h"
#include "common/env.h"
#include "executor/executor.h"
#include "workload/instance_gen.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Table 3: execution experiment (real executor) ==\n");
  // The paper targets queries whose optimization time is comparable to
  // their execution time (Section 4.3's discussion). A six-table join makes
  // the plan search genuinely expensive while the reduced scale factor
  // keeps executions in the same ballpark.
  SchemaScale scale;
  scale.factor = EnvDouble("SCRPQO_SCALE", 0.1);
  scale.materialize_rows = true;
  BenchmarkDb tpch = BuildTpchSkewed(scale);
  Optimizer optimizer(&tpch.db);

  auto tmpl = std::make_shared<QueryTemplate>(
      "TPCH_exec6",
      std::vector<std::string>{"lineitem", "orders", "customer", "nation",
                               "part", "supplier"});
  auto add_join = [&tmpl](int lt, const char* lc, int rt, const char* rc) {
    JoinEdge e;
    e.left_table = lt;
    e.left_column = lc;
    e.right_table = rt;
    e.right_column = rc;
    tmpl->AddJoin(e);
  };
  add_join(0, "l_orderkey", 1, "o_key");
  add_join(1, "o_custkey", 2, "c_key");
  add_join(2, "c_nation", 3, "n_key");
  add_join(0, "l_partkey", 4, "p_key");
  add_join(0, "l_suppkey", 5, "s_key");
  auto add_pred = [&tmpl](int t, const char* col, int slot) {
    PredicateTemplate p;
    p.table_index = t;
    p.column = col;
    p.op = CompareOp::kLe;
    p.param_slot = slot;
    SCRPQO_CHECK(tmpl->AddPredicate(std::move(p)).ok(), "pred");
  };
  add_pred(0, "l_shipdate", 0);
  add_pred(1, "o_totalprice", 1);
  BoundTemplate bt;
  bt.db = &tpch;
  bt.tmpl = tmpl;

  int m = static_cast<int>(EnvInt64("SCRPQO_EXEC_M", 500));
  InstanceGenOptions gen;
  gen.m = m;
  auto instances = GenerateInstances(bt, gen);

  // The oracle here is used for ordering + charging; per-technique
  // optimization time is simulated from its measured per-call average.
  Oracle oracle = Oracle::Build(optimizer, instances);
  std::vector<int> perm =
      MakeOrdering(OrderingKind::kRandom, oracle.OrderingInfo(), 3);
  double opt_seconds_per_call = oracle.avg_optimize_seconds();

  std::vector<NamedFactory> techniques = {
      {"OptAlways", [] { return std::make_unique<OptAlways>(); }, 0.0},
      {"OptOnce", [] { return std::make_unique<OptOnce>(); }, 0.0},
      {"Ellipse(0.9)",
       [] { return std::make_unique<Ellipse>(EllipseOptions{.delta = 0.9}); },
       0.0},
      {"Ellipse(0.7)",
       [] { return std::make_unique<Ellipse>(EllipseOptions{.delta = 0.7}); },
       0.0},
      ScrFactory(1.1),
      PcmFactory(1.1),
      {"Ranges(0.01)",
       [] { return std::make_unique<Ranges>(RangesOptions{}); }, 0.0},
  };

  PrintTableHeader({"technique", "opt time s", "exec time s", "total s",
                    "plans"});
  for (const auto& nf : techniques) {
    auto technique = nf.factory();
    EngineContext engine(&tpch.db, &optimizer);
    engine.SetOracle([&oracle](const WorkloadInstance& wi) {
      return oracle.result(wi.id);
    });
    double exec_seconds = 0.0;
    double getplan_seconds = 0.0;
    for (int idx : perm) {
      const WorkloadInstance& wi = instances[static_cast<size_t>(idx)];
      auto t0 = std::chrono::steady_clock::now();
      PlanChoice choice = technique->OnInstance(wi, &engine);
      auto t1 = std::chrono::steady_clock::now();
      getplan_seconds += std::chrono::duration<double>(t1 - t0).count();
      ExecutionResult r = ExecutePlan(tpch.db, wi.instance, *choice.plan->plan);
      exec_seconds += r.elapsed_seconds;
    }
    // Optimization time = real per-call cost for each charged call plus the
    // measured technique-side bookkeeping (the oracle answered instantly,
    // so getplan_seconds excludes actual plan search).
    double opt_seconds =
        static_cast<double>(engine.num_optimizer_calls()) *
            opt_seconds_per_call +
        getplan_seconds;
    PrintTableRow({nf.name, FormatDouble(opt_seconds, 2),
                   FormatDouble(exec_seconds, 2),
                   FormatDouble(opt_seconds + exec_seconds, 2),
                   std::to_string(technique->PeakPlansCached() == 0
                                      ? engine.num_optimizer_calls()
                                      : technique->PeakPlansCached())});
  }
  std::printf(
      "\n(avg optimizer call: %.3f ms; %d instances; OptAlways 'plans' "
      "column = distinct optimizations)\n",
      1000.0 * opt_seconds_per_call, m);
  return 0;
}

// Shared setup for the figure/table benchmark binaries: standard technique
// factories and the env-scaled evaluation suite.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "pqo/density.h"
#include "pqo/ellipse.h"
#include "pqo/opt_always.h"
#include "pqo/opt_once.h"
#include "pqo/pcm.h"
#include "pqo/ranges.h"
#include "pqo/scr.h"
#include "workload/report.h"
#include "workload/suite.h"

namespace scrpqo::bench {

/// Builds the evaluation suite from SCRPQO_* env overrides, printing its
/// configuration so output files are self-describing.
inline EvaluationSuite MakeSuite(bool materialize_rows = false) {
  SuiteConfig cfg = SuiteConfig::FromEnv();
  cfg.materialize_rows = materialize_rows;
  std::printf(
      "# suite: %d templates x 5 orderings, m=%d (x2 for d>3), scale=%.2f, "
      "seed=%llu\n",
      cfg.num_templates, cfg.m, cfg.scale,
      static_cast<unsigned long long>(cfg.seed));
  return EvaluationSuite(cfg);
}

/// The paper's Table 2 technique roster at a given lambda.
struct NamedFactory {
  std::string name;
  TechniqueFactory factory;
  double lambda_for_violations = 0.0;
};

inline NamedFactory ScrFactory(double lambda) {
  return {"SCR" + FormatDouble(lambda, 1),
          [lambda] { return std::make_unique<Scr>(ScrOptions{.lambda = lambda}); },
          lambda};
}

inline NamedFactory PcmFactory(double lambda) {
  return {"PCM" + FormatDouble(lambda, 1),
          [lambda] { return std::make_unique<Pcm>(PcmOptions{.lambda = lambda}); },
          lambda};
}

inline std::vector<NamedFactory> AllTechniques(double lambda = 2.0) {
  return {
      {"OptOnce", [] { return std::make_unique<OptOnce>(); }, 0.0},
      PcmFactory(lambda),
      {"Ellipse(0.9)",
       [] { return std::make_unique<Ellipse>(EllipseOptions{.delta = 0.9}); },
       0.0},
      {"Density",
       [] { return std::make_unique<Density>(DensityOptions{}); }, 0.0},
      {"Ranges(0.01)",
       [] { return std::make_unique<Ranges>(RangesOptions{}); }, 0.0},
      ScrFactory(lambda),
  };
}

}  // namespace scrpqo::bench

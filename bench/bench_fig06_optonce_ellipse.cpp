// Figure 6: MSO and TotalCostRatio distribution across all sequences for
// Optimize-Once and Ellipse. Expected shape: both carry frequent large MSO
// values; Ellipse improves TotalCostRatio over OptOnce but a significant
// fraction of sequences still exceed TC = 10.
#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 6: MSO / TotalCostRatio, OptOnce vs Ellipse ==\n");
  EvaluationSuite suite = MakeSuite();

  for (const auto& nf : std::vector<NamedFactory>{
           {"OptOnce", [] { return std::make_unique<OptOnce>(); }, 0.0},
           {"Ellipse(0.9)",
            [] {
              return std::make_unique<Ellipse>(EllipseOptions{.delta = 0.9});
            },
            0.0}}) {
    auto seqs = suite.RunAll(nf.factory);
    std::printf("\n%s over %zu sequences\n", nf.name.c_str(), seqs.size());
    PrintSummaryRow("  MSO", Summarize(ExtractMso(seqs)));
    PrintSummaryRow("  TotalCostRatio", Summarize(ExtractTcr(seqs)));
    std::printf("  sorted-curve deciles (10%%..100%% of sequences):\n");
    PrintSortedCurve("  MSO curve", ExtractMso(seqs));
    PrintSortedCurve("  TC  curve", ExtractTcr(seqs));
    int tc_gt10 = 0;
    for (const auto& s : seqs) {
      if (s.total_cost_ratio > 10.0) ++tc_gt10;
    }
    std::printf("  sequences with TC > 10: %d (%.1f%%)\n", tc_gt10,
                100.0 * tc_gt10 / static_cast<double>(seqs.size()));
  }
  return 0;
}

// Multi-template serving throughput through PqoManager (the sharded layer
// on top of per-template AsyncScr caches).
//
// Builds an RD2 template fleet, then for each (threads, templates) cell of
// a 1/2/4/8 x 4/16/64 grid: creates a fresh manager, warms every
// template's cache with one single-threaded pass (warm-up lambda selection
// plus cache fill), and drives a timed window from the worker threads —
// mostly shared-lock getPlan traffic spread over T independent caches, so
// throughput should scale with cores until shard or cache contention
// bites. Emits BENCH_multitemplate.json; `scaling_4t_16templates` is the
// headline number (qps at 4 threads / qps at 1 thread, 16 templates). On a
// single-CPU container that ratio measures contention, not parallelism —
// the JSON records hw_threads so CI can judge.
//
// Flags:
//   --out=PATH          output JSON path (default BENCH_multitemplate.json)
//   --duration-ms=N     timed window per cell (default 200)
//   --min-scaling=X     fail (exit 1) if scaling_4t_16templates < X while
//                       hw_threads >= 4 (default 0 = report only)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "workload/multi_template.h"

namespace {

using namespace scrpqo;

struct CellResult {
  int threads = 0;
  int templates = 0;
  MultiTemplateRunResult run;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_multitemplate.json";
  int duration_ms = 200;
  double min_scaling = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--duration-ms=", 14) == 0) {
      duration_ms = std::atoi(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--min-scaling=", 14) == 0) {
      min_scaling = std::atof(argv[i] + 14);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const std::vector<int> template_counts = {4, 16, 64};
  TemplateFleet fleet(64, /*instances_per_template=*/16);

  std::vector<CellResult> cells;
  double qps_1t_16 = 0.0;
  double qps_4t_16 = 0.0;
  for (int templates : template_counts) {
    std::vector<ServedTemplate> served(
        fleet.served().begin(), fleet.served().begin() + templates);
    for (int threads : thread_counts) {
      PqoManagerOptions opts;
      opts.use_async = true;
      opts.warmup_instances = 4;
      opts.num_shards = 8;
      PqoManager manager(opts);

      // Single-threaded warm pass: every template completes warm-up and
      // fills its cache, so the timed window measures serving throughput,
      // not optimizer latency.
      MultiTemplateRunOptions warm;
      warm.threads = 1;
      warm.rounds = 1;
      (void)RunMultiTemplate(&manager, served, warm);

      MultiTemplateRunOptions timed;
      timed.threads = threads;
      timed.duration_ms = duration_ms;
      CellResult cell;
      cell.threads = threads;
      cell.templates = templates;
      cell.run = RunMultiTemplate(&manager, served, timed);
      std::printf(
          "threads=%d templates=%d qps=%.0f optimized=%lld lost=%lld "
          "plans=%lld\n",
          threads, templates, cell.run.qps,
          static_cast<long long>(cell.run.optimized),
          static_cast<long long>(cell.run.lost),
          static_cast<long long>(cell.run.plans_cached));
      if (templates == 16 && threads == 1) qps_1t_16 = cell.run.qps;
      if (templates == 16 && threads == 4) qps_4t_16 = cell.run.qps;
      cells.push_back(cell);
    }
  }

  double scaling = qps_1t_16 > 0.0 ? qps_4t_16 / qps_1t_16 : 0.0;
  unsigned hw = std::thread::hardware_concurrency();
  std::printf("scaling_4t_16templates=%.2fx hw_threads=%u\n", scaling, hw);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"throughput_multitemplate\",\n"
               "  \"hw_threads\": %u,\n  \"duration_ms\": %d,\n"
               "  \"results\": [\n",
               hw, duration_ms);
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(
        f,
        "    {\"threads\": %d, \"templates\": %d, \"queries\": %lld, "
        "\"qps\": %.1f, \"optimized\": %lld, \"lost\": %lld, "
        "\"plans\": %lld, \"global_evictions\": %lld}%s\n",
        c.threads, c.templates,
        static_cast<long long>(c.run.instances_served), c.run.qps,
        static_cast<long long>(c.run.optimized),
        static_cast<long long>(c.run.lost),
        static_cast<long long>(c.run.plans_cached),
        static_cast<long long>(c.run.global_evictions),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"scaling_4t_16templates\": %.3f\n}\n", scaling);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (min_scaling > 0.0 && hw >= 4 && scaling < min_scaling) {
    std::fprintf(stderr,
                 "FAIL: scaling_4t_16templates %.2f < required %.2f "
                 "(hw_threads=%u)\n",
                 scaling, min_scaling, hw);
    return 1;
  }
  return 0;
}

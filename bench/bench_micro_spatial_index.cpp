// Micro-benchmark (Section 6.2): when the instance list grows to thousands
// of entries, the selectivity check's linear scan becomes comparable to
// sVector computation; a spatial index answers the same queries while
// visiting a fraction of the entries. Reports getPlan-side candidate-search
// latency for scan vs k-d tree at growing list sizes, plus nodes visited.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"
#include "pqo/instance_index.h"

namespace {

using namespace scrpqo;

constexpr int kDims = 4;

std::vector<SVector> MakePoints(int n) {
  Pcg32 rng(42);
  std::vector<SVector> pts;
  pts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    SVector sv(kDims);
    for (auto& s : sv) s = rng.UniformDouble(0.001, 0.99);
    pts.push_back(std::move(sv));
  }
  return pts;
}

void BM_SelectivityCheckScan(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto points = MakePoints(n);
  auto queries = MakePoints(64);
  size_t qi = 0;
  const double lambda = 2.0;
  for (auto _ : state) {
    const SVector& q = queries[qi++ % queries.size()];
    int hits = 0;
    for (const auto& p : points) {
      auto ratios = SelectivityRatios(p, q);
      if (ComputeG(ratios) * ComputeL(ratios) <= lambda) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SelectivityCheckScan)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SelectivityCheckKdTree(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto points = MakePoints(n);
  InstanceKdTree tree(kDims);
  for (int i = 0; i < n; ++i) tree.Insert(i, points[static_cast<size_t>(i)]);
  auto queries = MakePoints(64);
  size_t qi = 0;
  int64_t visited = 0;
  int64_t query_count = 0;
  for (auto _ : state) {
    const SVector& q = queries[qi++ % queries.size()];
    auto matches = tree.RangeQuery(q, 2.0);
    visited += tree.last_query_nodes_visited();
    ++query_count;
    benchmark::DoNotOptimize(matches.size());
  }
  state.counters["nodes_visited_avg"] =
      query_count > 0
          ? static_cast<double>(visited) / static_cast<double>(query_count)
          : 0.0;
  state.counters["list_size"] = static_cast<double>(n);
}
BENCHMARK(BM_SelectivityCheckKdTree)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CandidateStreamKdTree(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto points = MakePoints(n);
  InstanceKdTree tree(kDims);
  for (int i = 0; i < n; ++i) tree.Insert(i, points[static_cast<size_t>(i)]);
  auto queries = MakePoints(64);
  size_t qi = 0;
  for (auto _ : state) {
    const SVector& q = queries[qi++ % queries.size()];
    auto top = tree.NearestByGl(q, 8);
    benchmark::DoNotOptimize(top.size());
  }
}
BENCHMARK(BM_CandidateStreamKdTree)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();

// Appendix A: why selectivity-*distance* based reuse (Ellipse/Density/
// Ranges neighborhoods) cannot bound sub-optimality. Instances at the SAME
// Euclidean distance from an optimized instance, in different directions,
// suffer wildly different sub-optimality when its plan is reused — because
// cost movement depends on which dimension moved and on the local cost
// coefficients, not on the distance. SCR's multiplicative G/L factors and
// Recost adapt to direction; a radius cannot.
#include <cmath>

#include "bench/bench_util.h"
#include "optimizer/recost.h"
#include "workload/instance_gen.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Appendix A: same selectivity distance, different "
              "sub-optimality ==\n");
  SchemaScale scale;
  BenchmarkDb tpch = BuildTpchSkewed(scale);
  BoundTemplate bt = BuildExample2dTemplate(tpch);
  Optimizer optimizer(&tpch.db);
  RecostService recost(&optimizer.cost_model());

  // Optimize a base instance, then probe points at equal distance delta in
  // the four axis directions.
  const double s0 = 0.11, s1 = 0.30, delta = 0.10;
  QueryInstance base = InstanceForSelectivities(tpch.db, *bt.tmpl, {s0, s1});
  OptimizationResult rb = optimizer.Optimize(base);
  CachedPlan plan = MakeCachedPlan(rb);
  std::printf("base instance sv=(%.2f, %.2f), optimal cost %.1f\n\n", s0, s1,
              rb.cost);

  PrintTableHeader({"probe (equal distance)", "SubOpt of reuse", "G*L",
                    "sel-check verdict"});
  struct Probe {
    const char* name;
    double p0, p1;
  };
  for (const Probe& p :
       {Probe{"+delta in dim 0", s0 + delta, s1},
        Probe{"-delta in dim 0", s0 - delta, s1},
        Probe{"+delta in dim 1", s0, s1 + delta},
        Probe{"-delta in dim 1", s0, s1 - delta}}) {
    QueryInstance q =
        InstanceForSelectivities(tpch.db, *bt.tmpl, {p.p0, p.p1});
    SVector sv = ComputeSelectivityVector(tpch.db, q);
    OptimizationResult rq = optimizer.Optimize(q);
    double reuse_cost = recost.Recost(plan, sv);
    double subopt = reuse_cost / rq.cost;
    auto ratios = SelectivityRatios(rb.svector, sv);
    double gl = ComputeG(ratios) * ComputeL(ratios);
    PrintTableRow({p.name, FormatDouble(subopt, 3), FormatDouble(gl, 2),
                   gl <= 2.0 ? "reusable (lambda=2)" : "needs cost check"});
  }
  std::printf(
      "\nA circular neighborhood of radius %.2f treats all four probes "
      "identically;\nthe realized sub-optimalities differ. SCR's checks are "
      "direction-aware:\nG*L grows with multiplicative movement and the "
      "cost check measures the\nactual plan cost, so reuse decisions track "
      "the cost surface, not geometry.\n",
      delta);

  // Second exhibit: reuse from a low-selectivity base (where an index seek
  // wins) at growing distances. The same step size is harmless in one
  // dimension and increasingly catastrophic in the other — sub-optimality
  // of distance-based reuse is unbounded (Appendix A's core claim).
  const double b0 = 0.01, b1 = 0.30;
  QueryInstance base2 =
      InstanceForSelectivities(tpch.db, *bt.tmpl, {b0, b1});
  OptimizationResult rb2 = optimizer.Optimize(base2);
  CachedPlan plan2 = MakeCachedPlan(rb2);
  std::printf("\nbase instance sv=(%.2f, %.2f) — index-seek plan, cost "
              "%.1f\n\n",
              b0, b1, rb2.cost);
  PrintTableHeader({"step size", "SubOpt if +step in dim0",
                    "SubOpt if +step in dim1"});
  for (double step : {0.05, 0.15, 0.35, 0.65}) {
    auto subopt_at = [&](double q0, double q1) {
      QueryInstance q =
          InstanceForSelectivities(tpch.db, *bt.tmpl, {q0, q1});
      SVector sv = ComputeSelectivityVector(tpch.db, q);
      return recost.Recost(plan2, sv) / optimizer.Optimize(q).cost;
    };
    PrintTableRow({FormatDouble(step, 2),
                   FormatDouble(subopt_at(b0 + step, b1), 2),
                   FormatDouble(subopt_at(b0, std::min(b1 + step, 0.95)), 2)});
  }
  std::printf("\nAny fixed reuse radius that admits the harmless dim-1 "
              "moves also admits\nthe dim-0 moves whose sub-optimality "
              "grows without bound.\n");
  return 0;
}

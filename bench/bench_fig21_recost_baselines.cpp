// Figure 21 (Appendix H.6): existing techniques augmented with the
// Recost-based redundancy check (lambda_r = sqrt(2)). Expected shape:
// numPlans improves for every baseline (sometimes numOpt too), but MSO /
// TotalCostRatio stay in the same bad range or get worse — the redundancy
// check alone cannot provide quality guarantees.
#include <cmath>

#include "bench/bench_util.h"

using namespace scrpqo;
using namespace scrpqo::bench;

int main() {
  std::printf("== Figure 21: baselines with Recost redundancy check ==\n");
  EvaluationSuite suite = MakeSuite();
  const double lr = std::sqrt(2.0);

  struct Pair {
    std::string name;
    TechniqueFactory plain;
    TechniqueFactory with_recost;
  };
  std::vector<Pair> pairs = {
      {"PCM2",
       [] { return std::make_unique<Pcm>(PcmOptions{.lambda = 2.0}); },
       [lr] {
         return std::make_unique<Pcm>(
             PcmOptions{.lambda = 2.0, .recost_redundancy_lambda_r = lr});
       }},
      {"Ellipse",
       [] { return std::make_unique<Ellipse>(EllipseOptions{.delta = 0.9}); },
       [lr] {
         return std::make_unique<Ellipse>(EllipseOptions{
             .delta = 0.9, .recost_redundancy_lambda_r = lr});
       }},
      {"Density",
       [] { return std::make_unique<Density>(DensityOptions{}); },
       [lr] {
         return std::make_unique<Density>(
             DensityOptions{.recost_redundancy_lambda_r = lr});
       }},
      {"Ranges",
       [] { return std::make_unique<Ranges>(RangesOptions{}); },
       [lr] {
         return std::make_unique<Ranges>(
             RangesOptions{.recost_redundancy_lambda_r = lr});
       }},
  };

  PrintTableHeader({"technique", "plans", "plans+R", "numOpt%", "numOpt%+R",
                    "TCavg", "TCavg+R", "MSOp95", "MSOp95+R"});
  for (const auto& p : pairs) {
    auto plain = suite.RunAll(p.plain);
    auto recost = suite.RunAll(p.with_recost);
    PrintTableRow({p.name,
                   FormatDouble(Mean(ExtractNumPlans(plain)), 1),
                   FormatDouble(Mean(ExtractNumPlans(recost)), 1),
                   FormatDouble(Mean(ExtractNumOptPct(plain)), 1),
                   FormatDouble(Mean(ExtractNumOptPct(recost)), 1),
                   FormatDouble(Mean(ExtractTcr(plain)), 2),
                   FormatDouble(Mean(ExtractTcr(recost)), 2),
                   FormatDouble(Percentile(ExtractMso(plain), 95), 2),
                   FormatDouble(Percentile(ExtractMso(recost), 95), 2)});
  }
  return 0;
}

// Bundle vs flat-sequential batched recost (the PR "SIMD-batched recost
// bundles" perf gate).
//
// For the paper's RD2 template at d = 4 this times, on the SAME pool of m
// cached plans and 64 selectivity vectors:
//   - flat:   one RecostProgram::Run per plan, sequentially — the
//             flat-sequential sweep shape before bundling
//   - bundle: RecostBundle::EvalMany — grouped 4-lane SoA passes
// at m = 4 / 16 / 64 live plans, and emits BENCH_recost_batch.json.
// Before timing anything it verifies bundle == flat to 1e-9 relative on
// every (plan, sv) pair it will measure, so the numbers can never come
// from a divergent kernel.
//
// Flags:
//   --out=PATH          output JSON path (default BENCH_recost_batch.json)
//   --min-speedup=S     exit non-zero unless geomean speedup over the
//                       m >= 16 pools is >= S (CI enforces this)
//   --min-speedup-m64=S exit non-zero unless the m=64 pool — the batched
//                       redundancy-sweep regime the bundle exists for —
//                       shows >= S (CI enforces this too)
//   --tier=scalar       pin dispatch to the guaranteed Vec4dScalar tier
//                       (the acceptance bar counts this tier on runners
//                       without AVX2/NEON)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "optimizer/optimizer.h"
#include "optimizer/recost.h"
#include "optimizer/recost_bundle.h"
#include "workload/instance_gen.h"
#include "workload/schemas.h"
#include "workload/templates.h"

namespace {

using namespace scrpqo;

/// ns per op of `fn` — same min-of-16-windows harness as
/// bench_micro_recost_flat (the minimum is the noise-robust statistic on a
/// shared container).
template <typename Fn>
double TimeNsPerOp(Fn&& fn) {
  fn();
  int64_t iters = 8;
  double ns = 0.0;
  for (;;) {
    auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    auto t1 = std::chrono::steady_clock::now();
    ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (ns >= 1e7 || iters >= (int64_t{1} << 30)) break;
    iters *= 2;
  }
  double best = ns / static_cast<double>(iters);
  for (int rep = 0; rep < 15; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    auto t1 = std::chrono::steady_clock::now();
    ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    best = std::min(best, ns / static_cast<double>(iters));
  }
  return best;
}

struct PoolResult {
  int m = 0;
  int num_shapes = 0;
  double flat_ns_per_plan = 0.0;
  double bundle_ns_per_plan = 0.0;
  double speedup = 0.0;
};

PoolResult RunPool(const BenchmarkDb& rd2, int m) {
  BoundTemplate bt = BuildRd2TemplateWithDimensions(rd2, 4);
  Optimizer optimizer(&rd2.db);
  InstanceGenOptions gen;
  gen.m = 64;
  gen.seed = 4321 + static_cast<uint64_t>(m);
  std::vector<WorkloadInstance> instances = GenerateInstances(bt, gen);

  // Pool of m cached plans spanning the template's operating points —
  // the shape families a live plan store accumulates. Unique-pointer
  // storage keeps program addresses stable for the bundle.
  std::vector<std::unique_ptr<CachedPlan>> pool;
  for (const auto& wi : instances) {
    if (static_cast<int>(pool.size()) >= m) break;
    OptimizationResult r =
        optimizer.OptimizeWithSVector(wi.instance, wi.svector);
    pool.push_back(std::make_unique<CachedPlan>(MakeCachedPlan(r)));
  }
  if (static_cast<int>(pool.size()) < m) {
    std::fprintf(stderr, "FATAL: only %zu plans for m=%d\n", pool.size(), m);
    std::exit(2);
  }

  const CostModel& model = optimizer.cost_model();
  const CostParams& params = model.params();
  RecostBundle bundle;
  std::vector<int> ids;
  std::set<uint64_t> shapes;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (!bundle.Add(static_cast<int>(i), &pool[i]->program)) {
      std::fprintf(stderr, "FATAL: plan %zu not bundleable\n", i);
      std::exit(2);
    }
    ids.push_back(static_cast<int>(i));
    // Shape census for the report (groups pack per op-kind sequence).
    uint64_t h = 1469598103934665603ull;
    for (int n = 0; n < pool[i]->program.num_nodes(); ++n) {
      h ^= static_cast<uint64_t>(pool[i]->program.ops()[n].kind);
      h *= 1099511628211ull;
    }
    shapes.insert(h);
  }

  std::vector<const SVector*> svs;
  for (const auto& wi : instances) svs.push_back(&wi.svector);

  // Equivalence guard over everything we are about to time.
  {
    std::vector<double> costs(ids.size());
    for (const SVector* sv : svs) {
      bundle.EvalMany(std::span<const int>(ids), *sv, params,
                      std::span<double>(costs),
                      [](size_t, double) { return true; });
      for (size_t i = 0; i < ids.size(); ++i) {
        double flat = pool[i]->program.Run(*sv, params);
        if (std::abs(costs[i] - flat) > std::abs(flat) * 1e-9) {
          std::fprintf(
              stderr,
              "FATAL: bundle/flat divergence m=%d plan=%zu: %.17g vs %.17g\n",
              m, i, costs[i], flat);
          std::exit(2);
        }
      }
    }
  }

  PoolResult out;
  out.m = m;
  out.num_shapes = static_cast<int>(shapes.size());
  const double n_sv = static_cast<double>(svs.size());
  const double n_plans = static_cast<double>(ids.size());
  double sink = 0.0;

  // Flat-sequential: the pre-bundle sweep — m independent program scans.
  out.flat_ns_per_plan = TimeNsPerOp([&] {
                           for (const SVector* sv : svs) {
                             for (const auto& p : pool) {
                               sink += p->program.Run(*sv, params);
                             }
                           }
                         }) /
                         (n_sv * n_plans);

  // Prepared once, like EngineContext::RecostBundled does for the life of
  // the serving context — the sweep itself is what production pays per sv.
  const RecostBundle::Prepared prep = RecostBundle::Prepare(params);
  std::vector<double> costs(ids.size());
  out.bundle_ns_per_plan =
      TimeNsPerOp([&] {
        for (const SVector* sv : svs) {
          bundle.EvalMany(std::span<const int>(ids), *sv, prep,
                          std::span<double>(costs),
                          [](size_t, double) { return true; });
          sink += costs[0];
        }
      }) /
      (n_sv * n_plans);

  out.speedup = out.flat_ns_per_plan / out.bundle_ns_per_plan;
  if (sink == 42.0) std::printf("#");  // defeat whole-loop elision
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_recost_batch.json";
  double min_speedup = 0.0;
  double min_speedup_m64 = 0.0;
  bool force_scalar = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--min-speedup-m64=", 18) == 0) {
      min_speedup_m64 = std::atof(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    } else if (std::strcmp(argv[i], "--tier=scalar") == 0) {
      force_scalar = true;
    } else if (std::strcmp(argv[i], "--tier=auto") == 0) {
      force_scalar = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (force_scalar) {
    RecostBundle::ForceTierForTest(SimdTier::kScalar4);
  }
  const char* tier = SimdTierName(RecostBundle::ActiveTier());
  std::printf("kernel tier: %s\n", tier);

  SchemaScale scale;
  BenchmarkDb rd2 = BuildRd2(scale);
  std::vector<PoolResult> results;
  for (int m : {4, 16, 64}) {
    results.push_back(RunPool(rd2, m));
    const PoolResult& r = results.back();
    std::printf(
        "m=%d shapes=%d flat/plan=%.1fns bundle/plan=%.1fns speedup=%.2fx\n",
        r.m, r.num_shapes, r.flat_ns_per_plan, r.bundle_ns_per_plan,
        r.speedup);
  }

  // The acceptance bar applies to the redundancy-sweep regime (m >= 16);
  // m=4 is reported for the small-cache picture but not gated.
  double log_sum = 0.0;
  int gated = 0;
  for (const PoolResult& r : results) {
    if (r.m >= 16) {
      log_sum += std::log(r.speedup);
      ++gated;
    }
  }
  double geomean = std::exp(log_sum / static_cast<double>(gated));
  std::printf("geomean_speedup_m16plus=%.2fx\n", geomean);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"micro_recost_batch\",\n"
               "  \"tier\": \"%s\",\n  \"results\": [\n",
               tier);
  for (size_t i = 0; i < results.size(); ++i) {
    const PoolResult& r = results[i];
    std::fprintf(f,
                 "    {\"m\": %d, \"num_shapes\": %d, "
                 "\"flat_ns_per_plan\": %.2f, \"bundle_ns_per_plan\": %.2f, "
                 "\"speedup\": %.3f}%s\n",
                 r.m, r.num_shapes, r.flat_ns_per_plan, r.bundle_ns_per_plan,
                 r.speedup, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"geomean_speedup_m16plus\": %.3f\n}\n", geomean);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (min_speedup > 0.0 && geomean < min_speedup) {
    std::fprintf(stderr, "FAIL: geomean speedup %.3f < required %.3f\n",
                 geomean, min_speedup);
    return 1;
  }
  if (min_speedup_m64 > 0.0) {
    for (const PoolResult& r : results) {
      if (r.m == 64 && r.speedup < min_speedup_m64) {
        std::fprintf(stderr, "FAIL: m=64 speedup %.3f < required %.3f\n",
                     r.speedup, min_speedup_m64);
        return 1;
      }
    }
  }
  return 0;
}
